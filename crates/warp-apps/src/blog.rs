//! A small Drupal-style blog used for the Table 5 data-corruption bugs.
//!
//! The paper compares Warp against Akkuş & Goel's taint-tracking recovery
//! system on four corruption bugs, two of them in Drupal ("lost voting
//! information" and "lost comments"). This module provides a blog with a
//! voting and a commenting feature, each with a togglable bug that silently
//! destroys data, plus the patch that fixes the bug.

use warp_core::{AppConfig, Patch};
use warp_ttdb::TableAnnotation;

/// `vote.wasl` with the "lost voting info" bug: casting a vote overwrites
/// the tally instead of incrementing it.
const VOTE_BUGGY: &str = r#"
let post = param("post");
db_query("UPDATE post SET votes = 1 WHERE post_id = " . int(post));
echo("<p id=\"voted\">Thanks for voting.</p>");
"#;

/// Fixed `vote.wasl`.
const VOTE_FIXED: &str = r#"
let post = param("post");
db_query("UPDATE post SET votes = votes + 1 WHERE post_id = " . int(post));
echo("<p id=\"voted\">Thanks for voting.</p>");
"#;

/// `comment.wasl` with the "lost comments" bug: adding a comment first
/// deletes the post's existing comments.
const COMMENT_BUGGY: &str = r#"
let post = int(param("post"));
db_query("DELETE FROM comment WHERE post_id = " . post);
let maxid = db_query("SELECT MAX(comment_id) FROM comment");
let next = int(maxid[0][array_keys(maxid[0])[0]]) + 1;
db_query("INSERT INTO comment (comment_id, post_id, body) VALUES (" . next . ", " . post . ", '" . sql_escape(param("body")) . "')");
echo("<p id=\"commented\">Comment added.</p>");
"#;

/// Fixed `comment.wasl`.
const COMMENT_FIXED: &str = r#"
let post = int(param("post"));
let maxid = db_query("SELECT MAX(comment_id) FROM comment");
let next = int(maxid[0][array_keys(maxid[0])[0]]) + 1;
db_query("INSERT INTO comment (comment_id, post_id, body) VALUES (" . next . ", " . post . ", '" . sql_escape(param("body")) . "')");
echo("<p id=\"commented\">Comment added.</p>");
"#;

/// `read.wasl`: shows a post with its votes and comments.
const READ: &str = r#"
let post = int(param("post"));
let rows = db_query("SELECT title, votes FROM post WHERE post_id = " . post);
echo("<h1>" . htmlspecialchars(rows[0]["title"]) . "</h1>");
echo("<p id=\"votes\">votes: " . rows[0]["votes"] . "</p>");
let comments = db_query("SELECT body FROM comment WHERE post_id = " . post . " ORDER BY comment_id");
echo("<ul id=\"comments\">");
foreach (comments as c) { echo("<li>" . htmlspecialchars(c["body"]) . "</li>"); }
echo("</ul>");
"#;

/// The two Drupal-analog corruption bugs of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlogBug {
    /// Voting overwrites the tally ("lost voting info").
    LostVotes,
    /// Commenting deletes earlier comments ("lost comments").
    LostComments,
}

/// Builds the blog application with the given bug present.
pub fn blog_app(bug: BlogBug, posts: usize) -> AppConfig {
    let mut config = AppConfig::new("warp-blog");
    config.add_table(
        "CREATE TABLE post (post_id INTEGER PRIMARY KEY, title TEXT, votes INTEGER DEFAULT 0)",
        TableAnnotation::new()
            .row_id("post_id")
            .partitions(["post_id"]),
    );
    config.add_table(
        "CREATE TABLE comment (comment_id INTEGER PRIMARY KEY, post_id INTEGER, body TEXT)",
        TableAnnotation::new()
            .row_id("comment_id")
            .partitions(["post_id"]),
    );
    for i in 1..=posts {
        config.seed(format!(
            "INSERT INTO post (post_id, title, votes) VALUES ({i}, 'Post {i}', 0)"
        ));
    }
    config.add_source("read.wasl", READ);
    config.add_source(
        "vote.wasl",
        if bug == BlogBug::LostVotes {
            VOTE_BUGGY
        } else {
            VOTE_FIXED
        },
    );
    config.add_source(
        "comment.wasl",
        if bug == BlogBug::LostComments {
            COMMENT_BUGGY
        } else {
            COMMENT_FIXED
        },
    );
    config
}

/// The patch fixing the given bug.
pub fn blog_patch(bug: BlogBug) -> Patch {
    match bug {
        BlogBug::LostVotes => {
            Patch::new("vote.wasl", VOTE_FIXED, "Drupal analog: lost voting info")
        }
        BlogBug::LostComments => Patch::new(
            "comment.wasl",
            COMMENT_FIXED,
            "Drupal analog: lost comments",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_core::{RepairRequest, WarpServer};
    use warp_http::{HttpRequest, Transport};

    #[test]
    fn lost_votes_bug_corrupts_and_retroactive_patch_recovers() {
        let mut s = WarpServer::new(blog_app(BlogBug::LostVotes, 2));
        for _ in 0..5 {
            s.send(HttpRequest::post("/vote.wasl", [("post", "1")]));
        }
        let r = s.send(HttpRequest::get("/read.wasl?post=1"));
        assert!(
            r.body.contains("votes: 1"),
            "the bug loses votes: {}",
            r.body
        );
        let outcome = s.repair(RepairRequest::RetroactivePatch {
            patch: blog_patch(BlogBug::LostVotes),
            from_time: 0,
        });
        assert!(!outcome.aborted);
        let r = s.send(HttpRequest::get("/read.wasl?post=1"));
        assert!(
            r.body.contains("votes: 5"),
            "repair must recover all votes: {}",
            r.body
        );
    }

    #[test]
    fn lost_comments_bug_corrupts_and_retroactive_patch_recovers() {
        let mut s = WarpServer::new(blog_app(BlogBug::LostComments, 1));
        for i in 0..3 {
            s.send(HttpRequest::post(
                "/comment.wasl",
                [("post", "1"), ("body", &format!("comment {i}"))],
            ));
        }
        let r = s.send(HttpRequest::get("/read.wasl?post=1"));
        assert_eq!(
            r.body.matches("<li>").count(),
            1,
            "the bug keeps only the last comment"
        );
        let outcome = s.repair(RepairRequest::RetroactivePatch {
            patch: blog_patch(BlogBug::LostComments),
            from_time: 0,
        });
        assert!(!outcome.aborted);
        let r = s.send(HttpRequest::get("/read.wasl?post=1"));
        assert_eq!(
            r.body.matches("<li>").count(),
            3,
            "repair must restore all comments: {}",
            r.body
        );
    }
}
