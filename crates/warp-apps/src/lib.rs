//! `warp-apps` — the evaluation applications, attacks and workloads.
//!
//! The paper evaluates Warp on MediaWiki (six attack scenarios, Table 2/3),
//! and on Drupal and Gallery2 data-corruption bugs (Table 5). This crate
//! provides the equivalents, written in WASL against `warp-core`:
//!
//! * [`wiki`] — a MediaWiki-style wiki (users, sessions, per-page ACLs,
//!   view/edit, search, calendar) with the paper's six seeded
//!   vulnerabilities and their patches.
//! * [`blog`] / [`gallery`] — small Drupal-/Gallery2-style applications with
//!   the data-corruption bugs used in the Table 5 comparison.
//! * [`attacks`] — drivers that carry out each attack through real simulated
//!   browsers against a Warp server.
//! * [`workload`] — the deterministic multi-user workload generator used by
//!   the Table 3/4/7/8 experiments.
//! * [`scenario`] — end-to-end scenario runner: build server, run workload
//!   with an attack, repair, and report what the paper's tables report.

pub mod attacks;
pub mod blog;
pub mod gallery;
pub mod scenario;
pub mod wiki;
pub mod workload;

pub use attacks::AttackKind;
pub use scenario::{run_scenario, ScenarioConfig, ScenarioResult};
pub use wiki::{wiki_app, wiki_patch};
pub use workload::{WorkloadConfig, WorkloadReport};
