//! A small Gallery2-style photo gallery used for the Table 5 corruption bugs
//! ("removing permissions" and "resizing images").

use warp_core::{AppConfig, Patch};
use warp_ttdb::TableAnnotation;

/// `perm.wasl` with the "removing permissions" bug: updating an album's
/// permission list drops every other user's entry for that album.
const PERM_BUGGY: &str = r#"
let album = int(param("album"));
let user = param("user");
let id = int(param("perm_id"));
db_query("DELETE FROM perm WHERE album_id = " . album);
db_query("INSERT INTO perm (perm_id, album_id, user_name) VALUES (" . id . ", " . album . ", '" . sql_escape(user) . "')");
echo("<p id=\"perm\">Permission stored.</p>");
"#;

/// Fixed `perm.wasl`: only add, never clear.
const PERM_FIXED: &str = r#"
let album = int(param("album"));
let user = param("user");
let id = int(param("perm_id"));
db_query("INSERT INTO perm (perm_id, album_id, user_name) VALUES (" . id . ", " . album . ", '" . sql_escape(user) . "')");
echo("<p id=\"perm\">Permission stored.</p>");
"#;

/// `resize.wasl` with the "resizing images" bug: resizing truncates the
/// stored image data instead of deriving a thumbnail from it.
const RESIZE_BUGGY: &str = r#"
let photo = int(param("photo"));
db_query("UPDATE photo SET data = 'thumb' WHERE photo_id = " . photo);
echo("<p id=\"resized\">Resized.</p>");
"#;

/// Fixed `resize.wasl`: the thumbnail goes into its own column.
const RESIZE_FIXED: &str = r#"
let photo = int(param("photo"));
db_query("UPDATE photo SET thumb = 'thumb-of-' || data WHERE photo_id = " . photo);
echo("<p id=\"resized\">Resized.</p>");
"#;

/// `album.wasl`: lists an album's permissions and photos.
const ALBUM: &str = r#"
let album = int(param("album"));
let perms = db_query("SELECT user_name FROM perm WHERE album_id = " . album . " ORDER BY perm_id");
echo("<ul id=\"perms\">");
foreach (perms as p) { echo("<li>" . htmlspecialchars(p["user_name"]) . "</li>"); }
echo("</ul>");
let photos = db_query("SELECT data, thumb FROM photo WHERE album_id = " . album . " ORDER BY photo_id");
echo("<ul id=\"photos\">");
foreach (photos as ph) { echo("<li>" . htmlspecialchars(ph["data"]) . "|" . htmlspecialchars(ph["thumb"]) . "</li>"); }
echo("</ul>");
"#;

/// The two Gallery2-analog corruption bugs of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GalleryBug {
    /// Adding a permission removes everyone else's ("removing perms").
    RemovingPermissions,
    /// Resizing destroys the original image data ("resizing images").
    ResizingImages,
}

/// Builds the gallery application with the given bug present.
pub fn gallery_app(bug: GalleryBug, photos: usize) -> AppConfig {
    let mut config = AppConfig::new("warp-gallery");
    config.add_table(
        "CREATE TABLE perm (perm_id INTEGER PRIMARY KEY, album_id INTEGER, user_name TEXT)",
        TableAnnotation::new()
            .row_id("perm_id")
            .partitions(["album_id"]),
    );
    config.add_table(
        "CREATE TABLE photo (photo_id INTEGER PRIMARY KEY, album_id INTEGER, data TEXT, thumb TEXT DEFAULT '')",
        TableAnnotation::new().row_id("photo_id").partitions(["album_id"]),
    );
    config.seed("INSERT INTO perm (perm_id, album_id, user_name) VALUES (1, 1, 'owner')");
    for i in 1..=photos {
        config.seed(format!(
            "INSERT INTO photo (photo_id, album_id, data) VALUES ({i}, 1, 'image-bytes-{i}')"
        ));
    }
    config.add_source("album.wasl", ALBUM);
    config.add_source(
        "perm.wasl",
        if bug == GalleryBug::RemovingPermissions {
            PERM_BUGGY
        } else {
            PERM_FIXED
        },
    );
    config.add_source(
        "resize.wasl",
        if bug == GalleryBug::ResizingImages {
            RESIZE_BUGGY
        } else {
            RESIZE_FIXED
        },
    );
    config
}

/// The patch fixing the given bug.
pub fn gallery_patch(bug: GalleryBug) -> Patch {
    match bug {
        GalleryBug::RemovingPermissions => Patch::new(
            "perm.wasl",
            PERM_FIXED,
            "Gallery2 analog: removing permissions",
        ),
        GalleryBug::ResizingImages => Patch::new(
            "resize.wasl",
            RESIZE_FIXED,
            "Gallery2 analog: resizing images",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_core::{RepairRequest, WarpServer};
    use warp_http::{HttpRequest, Transport};

    #[test]
    fn removing_permissions_bug_recovers_after_patch() {
        let mut s = WarpServer::new(gallery_app(GalleryBug::RemovingPermissions, 1));
        s.send(HttpRequest::post(
            "/perm.wasl",
            [("album", "1"), ("user", "alice"), ("perm_id", "2")],
        ));
        s.send(HttpRequest::post(
            "/perm.wasl",
            [("album", "1"), ("user", "bob"), ("perm_id", "3")],
        ));
        let r = s.send(HttpRequest::get("/album.wasl?album=1"));
        assert!(
            !r.body.contains("owner"),
            "the bug removed the owner's permission"
        );
        let outcome = s.repair(RepairRequest::RetroactivePatch {
            patch: gallery_patch(GalleryBug::RemovingPermissions),
            from_time: 0,
        });
        assert!(!outcome.aborted);
        let r = s.send(HttpRequest::get("/album.wasl?album=1"));
        for who in ["owner", "alice", "bob"] {
            assert!(
                r.body.contains(who),
                "{who} must be present after repair: {}",
                r.body
            );
        }
    }

    #[test]
    fn resizing_images_bug_recovers_after_patch() {
        let mut s = WarpServer::new(gallery_app(GalleryBug::ResizingImages, 2));
        s.send(HttpRequest::post("/resize.wasl", [("photo", "1")]));
        let r = s.send(HttpRequest::get("/album.wasl?album=1"));
        assert!(
            !r.body.contains("image-bytes-1"),
            "the bug destroyed the original image"
        );
        let outcome = s.repair(RepairRequest::RetroactivePatch {
            patch: gallery_patch(GalleryBug::ResizingImages),
            from_time: 0,
        });
        assert!(!outcome.aborted);
        let r = s.send(HttpRequest::get("/album.wasl?album=1"));
        assert!(
            r.body.contains("image-bytes-1"),
            "original restored: {}",
            r.body
        );
        assert!(
            r.body.contains("thumb-of-image-bytes-1"),
            "thumbnail derived: {}",
            r.body
        );
    }
}
