//! Deterministic multi-user workloads (paper §8.2, §8.5).

use crate::attacks::login;
use serde::{Deserialize, Serialize};
use warp_browser::Browser;
use warp_core::WarpHost;
use warp_http::HttpRequest;

/// Configuration of a background workload of ordinary wiki users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of ordinary (non-victim, non-attacker) users.
    pub users: usize,
    /// Page visits (read or edit) per user.
    pub visits_per_user: usize,
    /// Fraction (percent) of visits that edit rather than just read.
    pub edit_percent: usize,
    /// Whether the users run the Warp browser extension.
    pub with_extension: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            users: 10,
            visits_per_user: 4,
            edit_percent: 50,
            with_extension: true,
        }
    }
}

/// What a workload run produced.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Total page visits issued (including logins).
    pub page_visits: usize,
    /// Total page edits performed.
    pub edits: usize,
    /// Users that participated.
    pub users: usize,
}

/// Runs the background workload: each user logs in, then alternates between
/// reading and editing their own page (deterministically, based on the visit
/// index). Users are `user<start_index>..`, so workloads can avoid the users
/// designated as victims.
pub fn run_background_workload<H: WarpHost>(
    server: &mut H,
    config: &WorkloadConfig,
    start_index: usize,
) -> WorkloadReport {
    let mut report = WorkloadReport {
        users: config.users,
        ..Default::default()
    };
    for u in 0..config.users {
        let idx = start_index + u;
        let mut browser = if config.with_extension {
            Browser::new(format!("bg-user{idx}"))
        } else {
            Browser::without_extension(format!("bg-user{idx}"))
        };
        if !login(
            &mut browser,
            server,
            &format!("user{idx}"),
            &format!("pw{idx}"),
        ) {
            continue;
        }
        report.page_visits += 2; // The login form and the login POST.
        for v in 0..config.visits_per_user {
            let title = format!("Page{idx}");
            let mut visit = browser.visit(&format!("/view.wasl?title={title}"), server);
            report.page_visits += 1;
            let should_edit = (v * 100 / config.visits_per_user.max(1)) < config.edit_percent
                && visit.response.body.contains("<form");
            if should_edit {
                browser.fill(
                    &mut visit,
                    "body",
                    &format!("content of {title} revision {v}"),
                );
                let _ = browser.submit_form(&mut visit, "/edit.wasl", server);
                report.page_visits += 1;
                report.edits += 1;
            }
            server.upload_logs(browser.take_logs());
        }
        server.upload_logs(browser.take_logs());
    }
    report
}

/// A pure read or edit request stream used by the throughput benchmark
/// (Table 6): no browser, just HTTP requests against the server.
pub fn run_raw_requests<H: WarpHost>(server: &mut H, page_visits: usize, edit: bool) -> usize {
    let mut done = 0;
    for i in 0..page_visits {
        let title = format!("Page{}", (i % 3) + 1);
        if edit {
            let mut req = HttpRequest::post(
                "/edit.wasl",
                [
                    ("title", title.as_str()),
                    ("body", "benchmark edit body text"),
                ],
            );
            // Raw benchmark traffic runs as the admin (always allowed).
            req.cookies.set("sid", admin_session(server));
            server.send(req);
        } else {
            server.send(HttpRequest::get(&format!("/view.wasl?title={title}")));
        }
        done += 1;
    }
    done
}

/// Returns (creating if needed) an admin session ID for raw benchmark traffic.
fn admin_session<H: WarpHost>(server: &mut H) -> String {
    let existing = server.with_host(|server| {
        server
            .db
            .execute_logged(
                "SELECT sid FROM session WHERE user_name = 'admin'",
                server.clock.now() + 1,
            )
            .ok()
            .and_then(|out| out.result.rows.first().map(|r| r[0].as_display_string()))
    });
    if let Some(sid) = existing {
        if !sid.is_empty() {
            return sid;
        }
    }
    let mut browser = Browser::new("admin-bench");
    let ok = login(&mut browser, server, "admin", "adminpw");
    debug_assert!(ok);
    browser.cookies.get("sid").unwrap_or_default().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wiki::wiki_app;
    use warp_core::WarpServer;

    #[test]
    fn background_workload_is_deterministic_and_logged() {
        let mut s1 = WarpServer::new(wiki_app(6, 6));
        let mut s2 = WarpServer::new(wiki_app(6, 6));
        let config = WorkloadConfig {
            users: 3,
            visits_per_user: 3,
            edit_percent: 50,
            with_extension: true,
        };
        let r1 = run_background_workload(&mut s1, &config, 2);
        let r2 = run_background_workload(&mut s2, &config, 2);
        assert_eq!(r1, r2, "workloads must be deterministic");
        assert!(r1.edits > 0);
        assert_eq!(s1.history.len(), s2.history.len());
        // Actions carry client correlation and uploaded logs exist.
        let with_client = s1
            .history
            .actions()
            .iter()
            .filter(|a| a.client.is_some())
            .count();
        assert!(with_client > 0);
        assert!(!s1.history.client_ids().is_empty());
    }

    #[test]
    fn raw_request_stream_reads_and_edits() {
        let mut s = WarpServer::new(wiki_app(3, 3));
        assert_eq!(run_raw_requests(&mut s, 5, false), 5);
        assert_eq!(run_raw_requests(&mut s, 5, true), 5);
        let r = s.handle(HttpRequest::get("/view.wasl?title=Page1"));
        assert!(r.body.contains("benchmark edit body text"));
    }
}
