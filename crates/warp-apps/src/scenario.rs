//! End-to-end scenario runner: build the wiki, run a workload with an
//! attack, repair, and report the quantities the paper's tables report.

use crate::attacks::{execute_attack, login, AttackKind};
use crate::wiki::{attacker_acl_sql, attacker_seed_sql, wiki_app, wiki_patch};
use crate::workload::{run_background_workload, WorkloadConfig};
use serde::{Deserialize, Serialize};
use warp_browser::Browser;
use warp_core::{RepairOutcome, RepairRequest, RepairStrategy, Warp, WarpHost};
use warp_http::HttpRequest;

/// Configuration of one attack-recovery scenario (Table 3 / 7 / 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Which attack to carry out.
    pub attack: AttackKind,
    /// Total users in the workload (the paper uses 100 and 5,000).
    pub users: usize,
    /// Number of victims subjected to the attack (3 in the paper, 1 for the
    /// ACL-error scenario).
    pub victims: usize,
    /// Page visits per background user.
    pub visits_per_user: usize,
    /// If true, victims act at the start of the workload (the paper's
    /// "victims at start" variant of Table 7); otherwise at the end.
    pub victims_at_start: bool,
    /// Worker threads for the partitioned parallel repair engine; `0` runs
    /// the classic sequential engine.
    pub repair_workers: usize,
}

impl ScenarioConfig {
    /// A small default configuration for the given attack.
    pub fn small(attack: AttackKind) -> Self {
        ScenarioConfig {
            attack,
            users: 10,
            victims: if attack == AttackKind::AclError { 1 } else { 3 },
            visits_per_user: 2,
            victims_at_start: false,
            repair_workers: 0,
        }
    }

    /// The repair strategy this configuration selects.
    pub fn repair_strategy(&self) -> RepairStrategy {
        if self.repair_workers == 0 {
            RepairStrategy::Sequential
        } else {
            RepairStrategy::Partitioned {
                workers: self.repair_workers,
            }
        }
    }
}

/// What the scenario produced, before and after repair.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The attack that was run.
    pub attack: AttackKind,
    /// True if the attack visibly corrupted state before repair.
    pub attack_succeeded: bool,
    /// True if, after repair, the attack's effects are gone while the
    /// background users' edits survive.
    pub repaired: bool,
    /// Users with at least one queued conflict after repair (Table 3).
    pub users_with_conflicts: usize,
    /// The repair controller's counters and timing (Tables 7/8).
    pub outcome: RepairOutcome,
    /// Total actions in the history when repair started.
    pub total_actions: usize,
}

/// The wiki application (with attacker seed rows) a scenario installs.
/// Exposed so scenarios can run in persistent mode: open a server over a
/// storage backend with this app and hand it to [`run_scenario_on`].
pub fn scenario_app(config: &ScenarioConfig) -> warp_core::AppConfig {
    let n_users = config.users.max(config.victims + 2);
    let mut app = wiki_app(n_users, n_users);
    app.seed(attacker_seed_sql());
    app.seed(attacker_acl_sql());
    app
}

/// Runs one scenario end to end on a fresh in-memory deployment, driven
/// through the concurrent [`Warp`] façade.
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioResult {
    let mut warp = Warp::builder()
        .app(scenario_app(config))
        .repair_workers(config.repair_workers)
        .start();
    run_scenario_on(config, &mut warp)
}

/// Runs one scenario end to end on a caller-provided host: a [`Warp`]
/// handle built with [`warp_core::Warp::builder`] (typically over a storage
/// backend, so the whole attack-and-recovery run is persisted and
/// restartable) or a bare [`warp_core::WarpServer`] — the deprecated
/// synchronous shim, accepted so the shim-equivalence tests can drive the
/// identical workload through both front ends. The host must have been
/// built from [`scenario_app`] with the same config.
pub fn run_scenario_on<H: WarpHost>(config: &ScenarioConfig, server: &mut H) -> ScenarioResult {
    // Victims log in with extension-enabled browsers.
    let mut victims: Vec<(Browser, String)> = Vec::new();
    for i in 1..=config.victims {
        let mut b = Browser::new(format!("victim{i}"));
        let ok = login(&mut b, server, &format!("user{i}"), &format!("pw{i}"));
        debug_assert!(ok, "victim login must succeed");
        victims.push((b, format!("Page{i}")));
    }
    let mut attacker = Browser::new("attacker-browser");

    let background = WorkloadConfig {
        users: config.users.saturating_sub(config.victims + 1),
        visits_per_user: config.visits_per_user,
        edit_percent: 50,
        with_extension: true,
    };
    let trace;
    if config.victims_at_start {
        trace = execute_attack(config.attack, server, &mut attacker, &mut victims);
        run_background_workload(server, &background, config.victims + 1);
    } else {
        run_background_workload(server, &background, config.victims + 1);
        trace = execute_attack(config.attack, server, &mut attacker, &mut victims);
    }
    // Victims keep using the wiki after the attack.
    for (i, (victim, page)) in victims.iter_mut().enumerate() {
        let mut visit = victim.visit(&format!("/view.wasl?title={page}"), server);
        if visit.response.body.contains("<form") {
            // The victim edits on top of whatever the page currently shows
            // (which may include attacker-injected content), as in the
            // paper's worst-case scenario.
            let existing = visit.document.field_value("body").unwrap_or_default();
            victim.fill(
                &mut visit,
                "body",
                &format!("{existing}\nvictim {} post-attack note", i + 1),
            );
            let _ = victim.submit_form(&mut visit, "/edit.wasl", server);
        }
        server.upload_logs(victim.take_logs());
    }

    let attack_succeeded = attack_visible(server, config.attack);
    let total_actions = server.with_host(|s| s.history.len());

    // Initiate repair: retroactive patch, or admin-initiated undo. Through
    // a `Warp` host this goes over the first-class repair-handle path.
    let strategy = config.repair_strategy();
    let outcome = match wiki_patch(config.attack) {
        Some(patch) => server.host_repair(
            RepairRequest::RetroactivePatch {
                patch,
                from_time: 0,
            },
            strategy,
        ),
        None => server.host_repair(
            RepairRequest::UndoVisit {
                client_id: trace
                    .admin_client
                    .clone()
                    .unwrap_or_else(|| "admin-browser".into()),
                visit_id: trace.admin_visit.unwrap_or(1),
                initiated_by_admin: true,
            },
            strategy,
        ),
    };

    // Conflict resolution (paper §5.4): users whose page visits could not be
    // replayed resolve the conflict by cancelling that page visit, which is
    // the resolution the paper's prototype supports and the one its
    // clickjacking discussion expects users to choose.
    let (users_with_conflicts, pending) = server.with_host(|s| {
        let pending: Vec<(String, u64)> = s
            .conflicts
            .all()
            .iter()
            .filter(|c| !c.resolved)
            .map(|c| (c.client_id.clone(), c.visit_id))
            .collect();
        (s.conflicts.clients_with_conflicts(), pending)
    });
    for (client, visit) in pending {
        let _ = server.host_repair(
            RepairRequest::UndoVisit {
                client_id: client.clone(),
                visit_id: visit,
                initiated_by_admin: true,
            },
            strategy,
        );
        server.with_host(move |s| s.conflicts.resolve(&client, visit));
    }

    let still_visible = attack_visible(server, config.attack);
    let legit_preserved = legitimate_edits_preserved(server, &background, config.victims + 1);
    ScenarioResult {
        attack: config.attack,
        attack_succeeded,
        repaired: !still_visible && legit_preserved,
        users_with_conflicts,
        outcome,
        total_actions,
    }
}

/// Checks whether the attack's visible damage is present in the current
/// state of the wiki.
fn attack_visible<H: WarpHost>(server: &mut H, attack: AttackKind) -> bool {
    match attack {
        AttackKind::ReflectedXss | AttackKind::StoredXss | AttackKind::SqlInjection => {
            let r = server.send(HttpRequest::get("/view.wasl?title=Page1"));
            r.body.contains("INFECTED BY XSS")
        }
        AttackKind::Csrf => server.with_host(|s| {
            let out =
                s.db.execute_logged(
                    "SELECT last_editor FROM page WHERE title = 'Public'",
                    s.clock.now() + 1,
                )
                .expect("query last editor");
            out.result
                .rows
                .first()
                .map(|r| r[0].as_display_string() == "attacker")
                .unwrap_or(false)
        }),
        AttackKind::Clickjacking => {
            let r = server.send(HttpRequest::get("/view.wasl?title=Public"));
            r.body.contains("tricked into clicking")
        }
        AttackKind::AclError => {
            let r = server.send(HttpRequest::get("/view.wasl?title=Page2"));
            r.body.contains("mistakenly granted rights")
        }
    }
}

/// Checks that the background users' legitimate edits survived repair.
fn legitimate_edits_preserved<H: WarpHost>(
    server: &mut H,
    background: &WorkloadConfig,
    start_index: usize,
) -> bool {
    if background.users == 0 || background.visits_per_user == 0 || background.edit_percent == 0 {
        return true;
    }
    // The first background user's first edit writes "revision 0" to its page.
    let title = format!("Page{start_index}");
    let r = server.send(HttpRequest::get(&format!("/view.wasl?title={title}")));
    r.body.contains("revision")
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_core::WarpServer;
    use warp_http::Transport;

    #[test]
    fn stored_xss_scenario_recovers_with_retroactive_patching() {
        let result = run_scenario(&ScenarioConfig::small(AttackKind::StoredXss));
        assert!(
            result.attack_succeeded,
            "the attack must succeed before repair"
        );
        assert!(
            result.repaired,
            "repair must remove the attack and keep legitimate edits"
        );
        assert!(!result.outcome.aborted);
        assert!(result.outcome.stats.app_runs_reexecuted < result.total_actions);
    }

    #[test]
    fn acl_error_scenario_recovers_with_admin_undo() {
        let result = run_scenario(&ScenarioConfig::small(AttackKind::AclError));
        assert!(result.attack_succeeded);
        assert!(
            result.repaired,
            "the mistaken grant's effects must be reverted"
        );
    }

    #[test]
    fn reflected_xss_scenario_recovers() {
        let result = run_scenario(&ScenarioConfig::small(AttackKind::ReflectedXss));
        assert!(result.attack_succeeded);
        assert!(result.repaired);
    }

    #[test]
    fn persistent_scenario_survives_restart() {
        use warp_core::MemoryBackend;
        let config = ScenarioConfig::small(AttackKind::StoredXss);
        let backend = MemoryBackend::new();
        let (mut warp, report) = Warp::builder()
            .app(scenario_app(&config))
            .backend(Box::new(backend.clone()))
            .build()
            .expect("open persistent scenario deployment");
        assert!(!report.recovered, "first open must start fresh");
        let result = run_scenario_on(&config, &mut warp);
        assert!(result.attack_succeeded && result.repaired);
        drop(warp); // crash

        // Recover: the post-repair state must be exactly what persisted.
        let (mut recovered, report) = Warp::builder()
            .app(scenario_app(&config))
            .backend(Box::new(backend))
            .build()
            .expect("recover scenario deployment");
        assert!(report.recovered);
        assert!(recovered.pending_repair().is_none());
        // The attack stays repaired on the recovered deployment.
        let r = recovered.send(HttpRequest::get("/view.wasl?title=Page1"));
        assert!(!r.body.contains("INFECTED BY XSS"));
        assert!(recovered.with_host(|s| s.history.len()) >= result.total_actions);
    }

    /// The satellite contract for the deprecated shim: driving the identical
    /// scenario workload through a bare `WarpServer` and through the
    /// concurrent `Warp` façade must produce byte-identical application
    /// state and the same repair outcome.
    #[test]
    fn shim_and_facade_front_ends_are_equivalent() {
        let config = ScenarioConfig::small(AttackKind::StoredXss);

        let mut shim = WarpServer::new(scenario_app(&config));
        let shim_result = run_scenario_on(&config, &mut shim);

        let mut warp = Warp::builder().app(scenario_app(&config)).start();
        let facade_result = run_scenario_on(&config, &mut warp);
        let mut facade_server = warp.close();

        assert_eq!(shim_result.attack_succeeded, facade_result.attack_succeeded);
        assert_eq!(shim_result.repaired, facade_result.repaired);
        assert_eq!(
            shim_result.users_with_conflicts,
            facade_result.users_with_conflicts
        );
        assert_eq!(shim_result.total_actions, facade_result.total_actions);
        assert_eq!(
            shim_result.outcome.reexecuted_actions,
            facade_result.outcome.reexecuted_actions
        );
        assert_eq!(
            shim_result.outcome.cancelled_actions,
            facade_result.outcome.cancelled_actions
        );
        assert_eq!(
            shim.db.canonical_dump(),
            facade_server.db.canonical_dump(),
            "shim and façade must end in byte-identical application state"
        );
        assert_eq!(shim.history.len(), facade_server.history.len());
    }

    #[test]
    fn parallel_repair_scenario_matches_sequential() {
        let seq_cfg = ScenarioConfig::small(AttackKind::StoredXss);
        let mut par_cfg = seq_cfg;
        par_cfg.repair_workers = 2;
        let seq = run_scenario(&seq_cfg);
        let par = run_scenario(&par_cfg);
        assert!(
            par.repaired,
            "partitioned repair must recover the attack too"
        );
        assert_eq!(seq.repaired, par.repaired);
        assert_eq!(seq.users_with_conflicts, par.users_with_conflicts);
        assert_eq!(
            seq.outcome.stats.app_runs_reexecuted, par.outcome.stats.app_runs_reexecuted,
            "both engines must re-execute the same number of application runs"
        );
        assert_eq!(
            seq.outcome.stats.actions_cancelled,
            par.outcome.stats.actions_cancelled
        );
        assert!(
            par.outcome.stats.partitions_total > 1,
            "the wiki workload must decompose into multiple partitions: {}",
            par.outcome.stats.partitions_total
        );
    }
}
