//! Integration tests: shipper + standby over the in-process transport,
//! driven through the `Warp` facade exactly as a deployment would wire it.

use std::time::{Duration, Instant};
use warp_core::{AppConfig, Durability, MemoryBackend, StoreOptions, Warp};
use warp_http::HttpRequest;
use warp_replica::{channel_pair, LogShipper, Received, ReplicaError, ReplicaTransport, Standby};
use warp_store::ShipFrame;
use warp_ttdb::TableAnnotation;

fn tiny_app() -> AppConfig {
    let mut config = AppConfig::new("tiny");
    config.add_table(
        "CREATE TABLE page (page_id INTEGER PRIMARY KEY, title TEXT UNIQUE, body TEXT)",
        TableAnnotation::new()
            .row_id("page_id")
            .partitions(["title"]),
    );
    config.seed("INSERT INTO page (page_id, title, body) VALUES (1, 'Main', 'welcome')");
    config.add_source(
        "view.wasl",
        "let rows = db_query(\"SELECT body FROM page WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
         if (len(rows) == 0) { echo(\"missing\"); } else { echo(rows[0][\"body\"]); }",
    );
    config.add_source(
        "edit.wasl",
        "db_query(\"UPDATE page SET body = '\" . sql_escape(param(\"body\")) . \"' WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
         echo(\"saved\");",
    );
    config
}

fn edit(warp: &Warp, body: &str) {
    let response = warp.serve(HttpRequest::post(
        "/edit.wasl",
        [("title", "Main"), ("body", body)],
    ));
    assert!(response.body.contains("saved"));
}

/// Pumps the standby until it has applied everything the primary made
/// durable (or the deadline passes — the shipper heartbeats every few
/// milliseconds, so convergence is fast).
fn converge(standby: &mut Standby, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while standby.applied_lsn() < target {
        standby.pump(Duration::from_millis(20)).expect("pump");
        assert!(
            Instant::now() < deadline,
            "standby stuck at {} of {target}",
            standby.applied_lsn()
        );
    }
}

#[test]
fn standby_converges_and_dumps_match() {
    let (to_standby, to_primary) = channel_pair();
    let mut standby = Standby::attach(
        tiny_app(),
        Box::new(MemoryBackend::new()),
        StoreOptions::default(),
        to_primary,
    )
    .expect("attach standby");

    let (warp, _) = Warp::builder()
        .app(tiny_app())
        .backend(Box::new(MemoryBackend::new()))
        .durability(Durability::Immediate)
        .ship_log_to(Box::new(LogShipper::new(to_standby)))
        .build()
        .expect("build primary");

    for i in 0..10 {
        edit(&warp, &format!("rev {i}"));
    }
    warp.flush();
    let durable = warp.durable_lsn();
    assert_eq!(durable, 10, "one log record per edit");
    converge(&mut standby, durable);

    let primary_dump = warp.with_server(|s| s.db.canonical_dump());
    let standby_dump = standby
        .read_at_most_behind(0, |s| s.db.canonical_dump())
        .expect("standby is caught up");
    assert_eq!(primary_dump, standby_dump);
    // The standby's reads serve the latest replicated state.
    let body = standby
        .read_at_most_behind(0, |s| {
            use warp_http::Transport;
            s.send(HttpRequest::get("/view.wasl?title=Main")).body
        })
        .expect("read");
    assert!(body.contains("rev 9"));
}

#[test]
fn durable_lsn_watermark_counts_records() {
    let (warp, _) = Warp::builder()
        .app(tiny_app())
        .backend(Box::new(MemoryBackend::new()))
        .build()
        .expect("build");
    assert_eq!(warp.durable_lsn(), 0);
    for i in 0..5 {
        edit(&warp, &format!("r{i}"));
    }
    assert_eq!(warp.durable_lsn(), 5);
    // In-memory deployments have no log and report 0.
    let memory = Warp::builder().app(tiny_app()).start();
    assert_eq!(memory.durable_lsn(), 0);
}

/// A transport wrapper that corrupts the body of selected outgoing
/// frames — the "bit flipped in transit" shape of a torn stream.
struct Corrupting<T> {
    inner: T,
    corrupt_nth: u64,
    sent: u64,
}

impl<T: ReplicaTransport> ReplicaTransport for Corrupting<T> {
    fn send(&mut self, mut frame: Vec<u8>) -> bool {
        self.sent += 1;
        if self.sent == self.corrupt_nth {
            if let Some(last) = frame.last_mut() {
                *last ^= 0xff;
            }
        }
        self.inner.send(frame)
    }

    fn recv(&mut self, timeout: Duration) -> Received {
        self.inner.recv(timeout)
    }
}

#[test]
fn torn_frame_resyncs_from_the_watermark() {
    let (to_standby, to_primary) = channel_pair();
    let corrupting = Corrupting {
        inner: to_standby,
        corrupt_nth: 3,
        sent: 0,
    };
    let mut standby = Standby::attach(
        tiny_app(),
        Box::new(MemoryBackend::new()),
        StoreOptions::default(),
        to_primary,
    )
    .expect("attach standby");
    let (warp, _) = Warp::builder()
        .app(tiny_app())
        .backend(Box::new(MemoryBackend::new()))
        .durability(Durability::Immediate)
        .ship_log_to(Box::new(LogShipper::new(corrupting)))
        .build()
        .expect("build primary");

    for i in 0..8 {
        edit(&warp, &format!("rev {i}"));
    }
    warp.flush();
    converge(&mut standby, warp.durable_lsn());
    let primary_dump = warp.with_server(|s| s.db.canonical_dump());
    let standby_dump = standby
        .read_at_most_behind(0, |s| s.db.canonical_dump())
        .expect("caught up after resync");
    assert_eq!(primary_dump, standby_dump);
}

#[test]
fn attach_after_compaction_bootstraps_a_full_copy() {
    let (to_standby, to_primary) = channel_pair();
    let (warp, _) = Warp::builder()
        .app(tiny_app())
        .backend(Box::new(MemoryBackend::new()))
        .durability(Durability::Immediate)
        .ship_log_to(Box::new(LogShipper::new(to_standby)))
        .build()
        .expect("build primary");
    for i in 0..6 {
        edit(&warp, &format!("pre {i}"));
    }
    // A base checkpoint deletes every log segment: the records the
    // standby will ask for are no longer servable from the log.
    warp.checkpoint();

    let mut standby = Standby::attach(
        tiny_app(),
        Box::new(MemoryBackend::new()),
        StoreOptions::default(),
        to_primary,
    )
    .expect("attach standby");
    for i in 0..3 {
        edit(&warp, &format!("post {i}"));
    }
    warp.flush();
    converge(&mut standby, warp.durable_lsn());
    let primary_dump = warp.with_server(|s| s.db.canonical_dump());
    let standby_dump = standby
        .read_at_most_behind(0, |s| s.db.canonical_dump())
        .expect("caught up after bootstrap");
    assert_eq!(primary_dump, standby_dump);
}

#[test]
fn reads_beyond_the_staleness_bound_are_refused() {
    let (mut fake_shipper, to_primary) = channel_pair();
    let mut standby = Standby::attach(
        tiny_app(),
        Box::new(MemoryBackend::new()),
        StoreOptions::default(),
        to_primary,
    )
    .expect("attach standby");
    // The "primary" claims 5 durable records without shipping them.
    assert!(fake_shipper.send(ShipFrame::Watermark { durable_lsn: 5 }.encode()));
    standby.pump(Duration::from_millis(200)).expect("pump");
    assert_eq!(standby.lag(), 5);
    match standby.read_at_most_behind(3, |_| ()) {
        Err(ReplicaError::TooStale { lag: 5, max_lag: 3 }) => {}
        other => panic!("expected TooStale, got {other:?}"),
    }
    assert!(standby.read_at_most_behind(5, |_| ()).is_ok());
}

#[test]
fn promote_after_primary_death_serves_the_replicated_state() {
    let (to_standby, to_primary) = channel_pair();
    let mut standby = Standby::attach(
        tiny_app(),
        Box::new(MemoryBackend::new()),
        StoreOptions::default(),
        to_primary,
    )
    .expect("attach standby");
    let (warp, _) = Warp::builder()
        .app(tiny_app())
        .backend(Box::new(MemoryBackend::new()))
        .durability(Durability::Immediate)
        .ship_log_to(Box::new(LogShipper::new(to_standby)))
        .build()
        .expect("build primary");
    for i in 0..7 {
        edit(&warp, &format!("rev {i}"));
    }
    warp.flush();
    let expected = warp.with_server(|s| s.db.canonical_dump());
    // The primary dies. The channel buffers whatever was already shipped
    // — the TCP-like property a real socket gives a surviving standby.
    drop(warp);
    let deadline = Instant::now() + Duration::from_secs(10);
    while !standby
        .pump(Duration::from_millis(20))
        .expect("pump")
        .closed
    {
        assert!(Instant::now() < deadline, "transport never closed");
    }
    let (mut promoted, report) = standby.promote().expect("promote");
    assert_eq!(promoted.history.len(), 7);
    assert!(report.recovered);
    assert_eq!(promoted.db.canonical_dump(), expected);
    // The promoted server serves — and keeps logging to its own store.
    use warp_http::Transport;
    let response = promoted.send(HttpRequest::get("/view.wasl?title=Main"));
    assert!(response.body.contains("rev 6"));
    assert_eq!(promoted.durable_lsn(), 8);
}
