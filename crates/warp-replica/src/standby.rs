//! The standby: a warm replica continuously applying the shipped log.

use crate::transport::{Received, ReplicaTransport};
use crate::{ReplicaError, ReplicaResult};
use std::time::Duration;
use warp_core::{AppConfig, RecoveryReport, ServerConfig, WarpServer};
use warp_store::{ShipFrame, StorageBackend, StoreOptions};

/// What one [`Standby::pump`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Pumped {
    /// Log records applied (after overlap trimming).
    pub applied: usize,
    /// The transport is closed and fully drained — the primary is gone;
    /// the only moves left are serving stale reads and
    /// [`Standby::promote`].
    pub closed: bool,
}

/// A warm standby replica of one Warp deployment.
///
/// The standby owns its *own* store over its own backend and a live
/// [`WarpServer`] kept warm by applying every shipped record exactly as
/// crash recovery would ([`WarpServer::apply_replicated`]): re-executed
/// writes, fast-forwarded counters, repair commits and cancellation
/// flags. Each applied record is also appended to the standby's log, and
/// the standby runs its own checkpoint cadence over it — so promotion
/// replays only a short tail, not the whole history.
///
/// Stream discipline: the standby says hello (and recovers from any torn
/// or lost frame) with a [`ShipFrame::Restart`] carrying its durable
/// watermark; the shipper answers with the gap, or with a full
/// [`ShipFrame::Bootstrap`] store copy when the primary's segments no
/// longer reach back that far. Frames that arrive torn — a CRC mismatch,
/// or a gap where records are missing — never corrupt the standby: the
/// bad frame is dropped and a restart is requested from the exact record
/// after the last one durably applied.
pub struct Standby {
    app: AppConfig,
    options: StoreOptions,
    backend: Box<dyn StorageBackend>,
    server: WarpServer,
    transport: Box<dyn ReplicaTransport>,
    primary_durable: u64,
    closed: bool,
}

impl Standby {
    /// Opens (or re-opens — any state already in `backend` is recovered
    /// and resumed from) a standby over its own backend and announces
    /// itself to the shipper. The backend must support a second handle
    /// ([`StorageBackend::try_clone`]); both built-in backends do.
    pub fn attach(
        app: AppConfig,
        backend: Box<dyn StorageBackend>,
        options: StoreOptions,
        transport: impl ReplicaTransport + 'static,
    ) -> ReplicaResult<Standby> {
        let server_backend = backend.try_clone().ok_or_else(|| {
            ReplicaError::Unsupported("standby backend cannot hand out a second handle".into())
        })?;
        let config = ServerConfig::new(app.clone())
            .with_backend(server_backend)
            .with_store_options(options);
        let (server, _) = WarpServer::open(config)?;
        let mut standby = Standby {
            app,
            options,
            backend,
            server,
            transport: Box::new(transport),
            primary_durable: 0,
            closed: false,
        };
        standby.request_restart();
        Ok(standby)
    }

    /// Processes incoming frames: waits up to `timeout` for the first,
    /// then drains and applies everything already buffered. Call it in a
    /// loop (or from a dedicated thread) to keep the standby warm.
    pub fn pump(&mut self, timeout: Duration) -> ReplicaResult<Pumped> {
        let mut summary = Pumped::default();
        let mut wait = timeout;
        loop {
            if self.closed {
                summary.closed = true;
                return Ok(summary);
            }
            match self.transport.recv(wait) {
                Received::Frame(bytes) => self.handle_frame(&bytes, &mut summary)?,
                Received::Idle => return Ok(summary),
                Received::Closed => {
                    self.closed = true;
                    summary.closed = true;
                    return Ok(summary);
                }
            }
            wait = Duration::ZERO;
        }
    }

    fn handle_frame(&mut self, bytes: &[u8], summary: &mut Pumped) -> ReplicaResult<()> {
        let Some(frame) = ShipFrame::decode(bytes) else {
            // Torn in transit: drop it and restart from the last record
            // durably applied. Nothing bad reached the store.
            self.request_restart();
            return Ok(());
        };
        match frame {
            ShipFrame::Records { first_lsn, records } => {
                let expect = self.server.durable_lsn();
                if first_lsn > expect {
                    // A frame went missing: resync rather than apply a
                    // stream that skips records.
                    self.request_restart();
                    return Ok(());
                }
                // Overlap (a resync re-served records we already have) is
                // trimmed; the rest applies in order.
                let skip = (expect - first_lsn) as usize;
                for (kind, payload) in records.iter().skip(skip) {
                    self.server.apply_replicated(*kind, payload)?;
                    summary.applied += 1;
                }
                let end = first_lsn + records.len() as u64;
                self.primary_durable = self.primary_durable.max(end);
            }
            ShipFrame::Watermark { durable_lsn } => {
                self.primary_durable = self.primary_durable.max(durable_lsn);
            }
            ShipFrame::Bootstrap { blobs, next_lsn } => {
                self.rebuild_from(blobs)?;
                self.primary_durable = self.primary_durable.max(next_lsn);
            }
            // Wrong direction; a self-connected loopback is a bug, not
            // corruption.
            ShipFrame::Restart { .. } => {}
        }
        Ok(())
    }

    /// Replaces the standby's store wholesale with a shipped copy of the
    /// primary's and re-opens the warm server over it.
    fn rebuild_from(&mut self, blobs: Vec<(String, Vec<u8>)>) -> ReplicaResult<()> {
        for name in self.backend.list()? {
            self.backend.delete(&name)?;
        }
        for (name, bytes) in &blobs {
            self.backend.write_atomic(name, bytes)?;
        }
        self.backend.sync()?;
        let server_backend = self.backend.try_clone().ok_or_else(|| {
            ReplicaError::Unsupported("standby backend cannot hand out a second handle".into())
        })?;
        let config = ServerConfig::new(self.app.clone())
            .with_backend(server_backend)
            .with_store_options(self.options);
        let (server, _) = WarpServer::open(config)?;
        self.server = server;
        Ok(())
    }

    fn request_restart(&mut self) {
        let frame = ShipFrame::Restart {
            from: self.server.durable_lsn(),
        };
        if !self.transport.send(frame.encode()) {
            self.closed = true;
        }
    }

    /// The LSN up to which this standby has durably applied the stream.
    pub fn applied_lsn(&self) -> u64 {
        self.server.durable_lsn()
    }

    /// The primary's durable LSN as last heard (records or heartbeat).
    pub fn primary_durable_lsn(&self) -> u64 {
        self.primary_durable
    }

    /// How far behind the primary this standby *knows* itself to be:
    /// the last-heard primary watermark minus the applied LSN.
    pub fn lag(&self) -> u64 {
        self.primary_durable.saturating_sub(self.applied_lsn())
    }

    /// True once the transport is closed and drained (the primary is
    /// gone).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Serves a read against the warm server if the standby is at most
    /// `max_lag` records behind the primary's last-heard watermark — the
    /// explicit staleness bound for read offloading. The closure gets
    /// `&mut WarpServer` because the query APIs take `&mut self`; the
    /// contract is read-only (serve GETs, dump state, inspect history) —
    /// writes belong on the primary, and a written-to standby will
    /// diverge and force a resync.
    ///
    /// The bound is on *known* lag: a standby that has not heard from the
    /// primary recently may be further behind than it knows. Pump first
    /// for a fresh bound.
    pub fn read_at_most_behind<R>(
        &mut self,
        max_lag: u64,
        f: impl FnOnce(&mut WarpServer) -> R,
    ) -> ReplicaResult<R> {
        let lag = self.lag();
        if lag > max_lag {
            return Err(ReplicaError::TooStale { lag, max_lag });
        }
        Ok(f(&mut self.server))
    }

    /// Promotes this standby into a full primary: detaches from the
    /// stream, discards the warm apply server, and runs normal crash
    /// recovery over the standby's own store — fast, because the standby
    /// checkpointed as it applied, so only a short tail replays. The
    /// returned [`WarpServer`] serves and *repairs*: replicated repair
    /// commits, cancellation flags and pending-repair markers all
    /// survived the failover in the standby's log.
    pub fn promote(self) -> ReplicaResult<(WarpServer, RecoveryReport)> {
        let Standby {
            app,
            options,
            backend,
            server,
            transport,
            ..
        } = self;
        drop(transport);
        drop(server);
        let config = ServerConfig::new(app)
            .with_backend(backend)
            .with_store_options(options);
        Ok(WarpServer::open(config)?)
    }
}
