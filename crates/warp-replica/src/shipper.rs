//! The primary-side shipper: a [`warp_store::ShipperHook`] that turns the
//! group-commit writer's durable batches into a replication stream.

use crate::transport::{Received, ReplicaTransport};
use std::time::Duration;
use warp_store::{DurableStore, ShipFrame, ShipperHook};

/// Catch-up reads are chunked into frames of at most this many records,
/// so a standby resyncing a long gap never receives one giant frame.
const CATCHUP_CHUNK: usize = 1024;

/// Ships every durable batch to one standby over a
/// [`ReplicaTransport`]. Attach it with
/// [`warp_core::WarpBuilder::ship_log_to`] (or directly via
/// [`warp_store::GroupCommitWriter::spawn_with_shipper`]); it then runs
/// on the group-commit writer thread, which is what makes the resync
/// paths cheap and race-free — between batches the hook holds `&mut
/// DurableStore` and reads a perfectly consistent log.
///
/// Protocol, from this side:
///
/// * Nothing ships until the standby's hello — a
///   [`ShipFrame::Restart`] carrying its durable watermark — arrives.
/// * A restart from LSN `f` is served from the live segments
///   ([`DurableStore::read_records_from`]) when they still cover `f`, or
///   by a full [`ShipFrame::Bootstrap`] copy when a base checkpoint
///   already compacted the gap away.
/// * Once caught up, every durable batch ships as a
///   [`ShipFrame::Records`] the moment it commits — before the batch's
///   durability callbacks fire, so an acknowledged request is already on
///   the wire to the standby.
/// * While idle, the writer polls the hook every few milliseconds: queued
///   restarts are answered and a [`ShipFrame::Watermark`] heartbeat goes
///   out whenever the durable LSN moved, keeping the standby's lag
///   measurable with no record traffic.
///
/// A dead transport (peer gone) stops shipping but never disturbs the
/// primary: the hook goes quiet and the writer keeps committing.
pub struct LogShipper {
    transport: Box<dyn ReplicaTransport>,
    /// The next LSN the standby expects, once its hello arrived.
    peer_next: Option<u64>,
    /// The durable LSN last advertised via a watermark heartbeat.
    advertised: Option<u64>,
    /// The transport died; the shipper is permanently quiet.
    dead: bool,
}

impl LogShipper {
    /// Wraps a transport end. The shipper stays quiet until the standby's
    /// hello arrives on it.
    pub fn new(transport: impl ReplicaTransport + 'static) -> LogShipper {
        LogShipper {
            transport: Box::new(transport),
            peer_next: None,
            advertised: None,
            dead: false,
        }
    }

    fn send(&mut self, frame: &ShipFrame) -> bool {
        if self.dead {
            return false;
        }
        if !self.transport.send(frame.encode()) {
            self.dead = true;
            self.peer_next = None;
        }
        !self.dead
    }

    /// Drains queued control frames (restarts) without blocking.
    fn drain_control(&mut self, store: &mut DurableStore) {
        while !self.dead {
            match self.transport.recv(Duration::ZERO) {
                Received::Frame(bytes) => {
                    if let Some(ShipFrame::Restart { from }) = ShipFrame::decode(&bytes) {
                        self.serve_restart(store, from);
                    }
                    // Anything else (torn or non-control) is ignored: the
                    // standby re-sends its restart until records flow.
                }
                Received::Idle => return,
                Received::Closed => {
                    self.dead = true;
                    self.peer_next = None;
                    return;
                }
            }
        }
    }

    /// Answers a restart request: catch the standby up from `from` to the
    /// current durable LSN, from the segments when they still cover the
    /// gap, by a full store copy when they no longer do.
    fn serve_restart(&mut self, store: &mut DurableStore, from: u64) {
        let served = store
            .read_records_from(from)
            .unwrap_or_else(|e| panic!("replication resync read failed: {e}"));
        match served {
            Some(records) => {
                let mut next = from;
                for chunk in records.chunks(CATCHUP_CHUNK) {
                    let frame = ShipFrame::Records {
                        first_lsn: chunk[0].0,
                        records: chunk.iter().map(|(_, k, p)| (*k, p.clone())).collect(),
                    };
                    if !self.send(&frame) {
                        return;
                    }
                    next = chunk.last().expect("non-empty chunk").0 + 1;
                }
                self.peer_next = Some(next.max(from));
            }
            None => {
                // The segments no longer reach back to `from`: ship the
                // whole store. The copy is consistent because this thread
                // owns the store — nothing commits mid-copy.
                let blobs = store
                    .export_blobs()
                    .unwrap_or_else(|e| panic!("replication bootstrap read failed: {e}"));
                let frame = ShipFrame::Bootstrap {
                    blobs,
                    next_lsn: store.next_lsn(),
                };
                if self.send(&frame) {
                    self.peer_next = Some(store.next_lsn());
                }
            }
        }
        // The catch-up already tells the standby where the primary is.
        self.advertised = Some(store.next_lsn());
    }

    fn heartbeat(&mut self, store: &DurableStore) {
        let durable = store.next_lsn();
        if self.advertised == Some(durable) {
            return;
        }
        if self.send(&ShipFrame::Watermark {
            durable_lsn: durable,
        }) {
            self.advertised = Some(durable);
        }
    }
}

impl ShipperHook for LogShipper {
    fn batch_durable(
        &mut self,
        store: &mut DurableStore,
        first_lsn: u64,
        records: &[(u8, Vec<u8>)],
    ) {
        self.drain_control(store);
        let Some(next) = self.peer_next else {
            return; // no hello yet — the restart will catch these records up
        };
        if first_lsn == next {
            let frame = ShipFrame::Records {
                first_lsn,
                records: records.to_vec(),
            };
            if self.send(&frame) {
                self.peer_next = Some(first_lsn + records.len() as u64);
                self.advertised = Some(store.next_lsn());
            }
        } else {
            // The stream and the log disagree (a restart raced the
            // batch): re-serve from where the standby actually is.
            self.serve_restart(store, next);
        }
    }

    fn poll(&mut self, store: &mut DurableStore) {
        self.drain_control(store);
        if self.peer_next.is_some() {
            self.heartbeat(store);
        }
    }
}
