//! `warp-replica` — log shipping to a warm standby.
//!
//! The paper's recovery machinery replays the durable action log *after
//! the fact*; this crate makes the same log a *live replication stream*.
//! Every batch the primary's group-commit writer commits is framed with
//! its LSN and a CRC and shipped to a standby, which applies it exactly
//! as crash recovery would — into its own store, with its own checkpoint
//! chain — so it can serve bounded-staleness reads now and take over as a
//! full, repair-capable primary the moment the real one dies.
//!
//! The pieces:
//!
//! * [`LogShipper`] — the primary side. A [`warp_store::ShipperHook`]
//!   that runs on the group-commit writer thread; attach it with
//!   [`warp_core::WarpBuilder::ship_log_to`]. Ships each durable batch
//!   before its durability callbacks fire, answers standby restart
//!   requests from the live segments (or with a full store copy once a
//!   base checkpoint compacted the gap away), and heartbeats its durable
//!   watermark while idle.
//! * [`Standby`] — the replica side. Applies the stream record by record
//!   ([`warp_core::WarpServer::apply_replicated`]), detects torn frames
//!   and gaps and resyncs from its durable watermark, serves reads at an
//!   explicit staleness bound ([`Standby::read_at_most_behind`]), and
//!   promotes ([`Standby::promote`]) by running ordinary crash recovery
//!   over its own — already warm, already checkpointed — store.
//! * [`ReplicaTransport`] — the pluggable link: [`channel_pair`] for
//!   in-process wiring, [`StreamTransport`] for a length-prefixed byte
//!   stream over anything socket-shaped (the failover example runs it
//!   over process pipes).
//!
//! Replication never weakens the primary's durability story: batches
//! ship *after* they are durable, a slow or dead standby only makes
//! itself stale, and every frame is CRC-checked so a torn stream is
//! detected and resynced rather than applied.

mod shipper;
mod standby;
mod transport;

pub use shipper::LogShipper;
pub use standby::{Pumped, Standby};
pub use transport::{
    channel_pair, ChannelTransport, Received, ReplicaTransport, StreamTransport, KILL_MID_FRAME_ENV,
};

use warp_store::StoreError;

/// Errors surfaced by the replication subsystem.
#[derive(Debug)]
pub enum ReplicaError {
    /// The standby's own store failed (open, append, checkpoint, or an
    /// undecodable replicated record).
    Store(StoreError),
    /// A bounded-staleness read was refused: the standby's known lag
    /// exceeds the caller's bound.
    TooStale {
        /// The standby's known lag, in records.
        lag: u64,
        /// The bound the caller asked for.
        max_lag: u64,
    },
    /// The configuration cannot support a standby (e.g. a backend that
    /// cannot hand out a second handle).
    Unsupported(String),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Store(e) => write!(f, "standby store error: {e}"),
            ReplicaError::TooStale { lag, max_lag } => {
                write!(f, "standby is {lag} records behind (bound: {max_lag})")
            }
            ReplicaError::Unsupported(msg) => write!(f, "replication unsupported: {msg}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<StoreError> for ReplicaError {
    fn from(e: StoreError) -> Self {
        ReplicaError::Store(e)
    }
}

/// Result alias for replication operations.
pub type ReplicaResult<T> = Result<T, ReplicaError>;
