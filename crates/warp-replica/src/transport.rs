//! Pluggable transports for the replication stream.
//!
//! A transport moves whole encoded [`warp_store::ShipFrame`]s between a
//! primary's [`LogShipper`](crate::LogShipper) and a
//! [`Standby`](crate::Standby), in both directions. Two implementations:
//!
//! * [`channel_pair`] — an in-process pair over [`std::sync::mpsc`], for
//!   tests and single-process deployments. Sends buffer without bound and
//!   survive the peer's handle being dropped mid-drain, which is exactly
//!   the TCP-like property the failover tests rely on: a standby can
//!   still drain the acked prefix after the primary process object is
//!   gone.
//! * [`StreamTransport`] — a length-prefixed byte stream over any
//!   `Read`/`Write` pair: process pipes, socketpairs, or anything
//!   socket-shaped. A background thread reassembles frames off the read
//!   half; a torn stream (EOF mid-frame, or a garbage length) closes the
//!   receive side.

use std::io::{Read, Write};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::Duration;
use warp_store::{FRAME_HEADER, MAX_FRAME_BODY};

/// Environment variable enabling the mid-frame kill point: when set, a
/// [`StreamTransport`] aborts the process partway through writing a frame
/// — after the number of complete frames the variable names (`""` or a
/// non-number means zero). This simulates a primary dying mid-ship, which
/// must leave the receiving standby with a cleanly detectable torn stream
/// rather than a corrupt store.
pub const KILL_MID_FRAME_ENV: &str = "WARP_REPLICA_KILL_MID_FRAME";

/// What a [`ReplicaTransport::recv`] call produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Received {
    /// One whole frame (header + body, as encoded by
    /// [`warp_store::ShipFrame::encode`] — possibly corrupted in transit;
    /// the consumer validates the CRC).
    Frame(Vec<u8>),
    /// Nothing arrived within the timeout; the peer may still be alive.
    Idle,
    /// The peer is gone and every buffered frame has been drained.
    Closed,
}

/// A bidirectional, frame-oriented link between a shipper and a standby.
pub trait ReplicaTransport: Send {
    /// Sends one encoded frame. `false` means the peer is gone — the
    /// caller stops shipping; it must not panic the primary.
    fn send(&mut self, frame: Vec<u8>) -> bool;

    /// Receives the next frame, waiting up to `timeout`.
    fn recv(&mut self, timeout: Duration) -> Received;
}

/// The in-process transport: one end of a crosswired channel pair.
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Builds a connected in-process transport pair `(a, b)`: frames sent on
/// one end arrive on the other, in order, buffered without bound.
pub fn channel_pair() -> (ChannelTransport, ChannelTransport) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        ChannelTransport { tx: a_tx, rx: a_rx },
        ChannelTransport { tx: b_tx, rx: b_rx },
    )
}

impl ReplicaTransport for ChannelTransport {
    fn send(&mut self, frame: Vec<u8>) -> bool {
        self.tx.send(frame).is_ok()
    }

    fn recv(&mut self, timeout: Duration) -> Received {
        if timeout.is_zero() {
            return match self.rx.try_recv() {
                Ok(frame) => Received::Frame(frame),
                Err(TryRecvError::Empty) => Received::Idle,
                Err(TryRecvError::Disconnected) => Received::Closed,
            };
        }
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Received::Frame(frame),
            Err(RecvTimeoutError::Timeout) => Received::Idle,
            Err(RecvTimeoutError::Disconnected) => Received::Closed,
        }
    }
}

/// A length-prefixed byte-stream transport over any `Read`/`Write` pair —
/// the socket-shaped path. The write half is written directly (one frame
/// per [`send`](ReplicaTransport::send), flushed); the read half is
/// drained by a background thread that reassembles whole frames.
pub struct StreamTransport {
    writer: Box<dyn Write + Send>,
    frames: Receiver<Vec<u8>>,
    write_ok: bool,
    sent: u64,
    kill_after: Option<u64>,
}

impl StreamTransport {
    /// Wraps a `Read`/`Write` pair. Spawns the frame-reassembly thread,
    /// which runs until the read half hits EOF or a malformed length.
    pub fn new(
        reader: impl Read + Send + 'static,
        writer: impl Write + Send + 'static,
    ) -> StreamTransport {
        let (tx, frames) = channel();
        std::thread::Builder::new()
            .name("warp-replica-reader".into())
            .spawn(move || read_frames(reader, tx))
            .expect("spawning the replica stream reader");
        let kill_after = std::env::var(KILL_MID_FRAME_ENV)
            .ok()
            .map(|v| v.parse().unwrap_or(0));
        StreamTransport {
            writer: Box::new(writer),
            frames,
            write_ok: true,
            sent: 0,
            kill_after,
        }
    }
}

impl ReplicaTransport for StreamTransport {
    fn send(&mut self, frame: Vec<u8>) -> bool {
        if !self.write_ok {
            return false;
        }
        if let Some(after) = self.kill_after {
            if self.sent >= after && frame.len() > FRAME_HEADER {
                // The kill point: half the frame reaches the wire, then
                // the process dies — the torn-stream shape a real primary
                // crash produces.
                let cut = FRAME_HEADER + (frame.len() - FRAME_HEADER) / 2;
                let _ = self.writer.write_all(&frame[..cut]);
                let _ = self.writer.flush();
                std::process::abort();
            }
        }
        let ok = self.writer.write_all(&frame).is_ok() && self.writer.flush().is_ok();
        self.write_ok = ok;
        self.sent += 1;
        ok
    }

    fn recv(&mut self, timeout: Duration) -> Received {
        if timeout.is_zero() {
            return match self.frames.try_recv() {
                Ok(frame) => Received::Frame(frame),
                Err(TryRecvError::Empty) => Received::Idle,
                Err(TryRecvError::Disconnected) => Received::Closed,
            };
        }
        match self.frames.recv_timeout(timeout) {
            Ok(frame) => Received::Frame(frame),
            Err(RecvTimeoutError::Timeout) => Received::Idle,
            Err(RecvTimeoutError::Disconnected) => Received::Closed,
        }
    }
}

/// Reassembles `[len][crc][body]` frames off a byte stream until EOF or a
/// malformed header. Frames are forwarded whole (header included) without
/// CRC validation — the consumer validates, so a flipped bit surfaces as
/// a torn frame there, not silent loss here.
fn read_frames(mut reader: impl Read, tx: Sender<Vec<u8>>) {
    loop {
        let mut header = [0u8; FRAME_HEADER];
        if read_exact_or_eof(&mut reader, &mut header).is_none() {
            return;
        }
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BODY {
            // Garbage length: the stream is unrecoverable (framing is
            // lost), so close rather than misread gigabytes.
            return;
        }
        let mut frame = vec![0u8; FRAME_HEADER + len];
        frame[..FRAME_HEADER].copy_from_slice(&header);
        if read_exact_or_eof(&mut reader, &mut frame[FRAME_HEADER..]).is_none() {
            return;
        }
        if tx.send(frame).is_err() {
            return;
        }
    }
}

/// `read_exact` that treats EOF (and any read error) as `None`.
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Option<()> {
    reader.read_exact(buf).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_store::ShipFrame;

    #[test]
    fn channel_pair_is_crosswired_and_buffers_past_peer_drop() {
        let (mut a, mut b) = channel_pair();
        assert!(a.send(vec![1, 2, 3]));
        assert!(b.send(vec![4]));
        assert_eq!(b.recv(Duration::ZERO), Received::Frame(vec![1, 2, 3]));
        assert_eq!(a.recv(Duration::ZERO), Received::Frame(vec![4]));
        assert!(a.send(vec![9]));
        drop(a);
        // The buffered frame survives the peer's death; then Closed.
        assert_eq!(b.recv(Duration::ZERO), Received::Frame(vec![9]));
        assert_eq!(b.recv(Duration::ZERO), Received::Closed);
    }

    #[test]
    fn stream_transport_reassembles_frames_and_closes_on_torn_tail() {
        let frame_a = ShipFrame::Watermark { durable_lsn: 7 }.encode();
        let frame_b = ShipFrame::Restart { from: 3 }.encode();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&frame_a);
        bytes.extend_from_slice(&frame_b);
        // A torn third frame: header promising more bytes than exist.
        bytes.extend_from_slice(&frame_a[..FRAME_HEADER + 2]);
        let mut t = StreamTransport::new(std::io::Cursor::new(bytes), std::io::sink());
        let wait = Duration::from_secs(5);
        assert_eq!(t.recv(wait), Received::Frame(frame_a));
        assert_eq!(t.recv(wait), Received::Frame(frame_b));
        assert_eq!(t.recv(wait), Received::Closed);
    }
}
