//! The Warp application server.
//!
//! The server is the component the browser's transport talks to. During
//! normal execution it resolves each request to a WASL script, runs it
//! through the application host (which interposes on queries and
//! non-determinism), and records the resulting action — request, response,
//! loaded files, query dependencies, non-determinism — into the action
//! history graph. It also accepts client-side browser log uploads and serves
//! the conflict-resolution flow after repairs.

use crate::apphost::{run_application, AppRunContext, AppRunResult, ExecMode};
use crate::clock::LogicalClock;
use crate::config::AppConfig;
use crate::conflict::ConflictQueue;
use crate::history::{ActionId, ActionRecord, ClientRef, HistoryGraph};
use crate::sourcefs::SourceStore;
use crate::stats::LoggingStats;
use std::collections::BTreeSet;
use warp_browser::{PageVisitRecord, ReplayConfig};
use warp_http::{HttpRequest, HttpResponse, Router, Transport};
use warp_ttdb::{StorageStats, TableAnnotation, TimeTravelDb};

/// The Warp-enabled application server (Figure 1's server side).
///
/// This is the serving *engine state*: the database, clock, history graph
/// and durable log behind one application. Applications should build a
/// [`crate::Warp`] handle with [`crate::Warp::builder()`] and serve through
/// it — the handle is cloneable and callable from many threads, and it owns
/// an engine thread (plus, with
/// [`crate::WarpBuilder::engine_shards`], a pool of shard workers) running
/// against this struct. Constructing a `WarpServer` directly
/// ([`WarpServer::new`] / [`WarpServer::open`]) is deprecated: it is the
/// synchronous single-caller path, equivalent to a `Warp` built with
/// [`crate::Durability::Immediate`] and one shard, minus the concurrency —
/// use [`crate::Warp::builder()`] instead.
#[derive(Debug)]
pub struct WarpServer {
    /// Application name.
    pub app_name: String,
    /// Versioned application source files.
    pub sources: SourceStore,
    /// The time-travel database.
    pub db: TimeTravelDb,
    /// URL router.
    pub router: Router,
    /// The server's logical clock.
    pub clock: LogicalClock,
    /// The action history graph and per-client browser logs.
    pub history: HistoryGraph,
    /// Conflicts queued for users.
    pub conflicts: ConflictQueue,
    /// Configuration of the server-side re-execution browser.
    pub replay_config: ReplayConfig,
    /// Clients whose cookies must be invalidated on their next request
    /// (queued by repair when the repaired cookie differs, §5.3).
    pub pending_cookie_invalidations: BTreeSet<String>,
    /// Test-only reference switch: build repair commit records by
    /// snapshotting every table before repair and diffing afterwards (the
    /// O(database) strategy the mutation-tracked delta path replaced),
    /// instead of draining the delta tracker. Kept compiled in — like
    /// [`crate::scheduler::RepairStrategy::PartitionedFullClone`] — so the
    /// equivalence tests can prove both paths produce byte-identical
    /// persisted commits. Production servers leave this `false`.
    pub reference_snapshot_commit: bool,
    /// Disables column-aware frontier pruning: every repair dirty region is
    /// widened to all columns, reproducing the paper's row/partition-grained
    /// re-execution rule exactly. Used as the baseline side of the frontier
    /// benchmark and as a kill switch if a static footprint is ever doubted.
    pub column_oblivious_repair: bool,
    pub(crate) rng_counter: u64,
    pub(crate) session_counter: u64,
    /// The durable action log, when the server was opened with a storage
    /// backend (see [`crate::persist`]). `None` keeps the server in-memory.
    pub(crate) store: Option<crate::persist::LogSink>,
    /// An interrupted repair detected during recovery (a logged
    /// `RepairBegin` with no commit or abort).
    pub(crate) pending_repair: Option<crate::repair::RepairRequest>,
    /// Bookkeeping for incremental checkpoints: what changed in the history
    /// graph since the last checkpoint (row changes are tracked inside the
    /// database; see [`crate::persist::CheckpointMarks`]).
    pub(crate) ckpt_marks: crate::persist::CheckpointMarks,
    /// The background chain-compaction worker, when started via
    /// [`WarpServer::start_maintenance`]. Dropping the server stops it.
    pub(crate) maintenance: Option<warp_store::MaintenanceWorker>,
}

impl WarpServer {
    /// Installs an application and returns a server ready to handle requests.
    ///
    /// # Panics
    ///
    /// Panics if the application's schema or seed data is invalid — an
    /// installation error is a programming mistake in the app definition,
    /// not a runtime condition.
    pub fn new(config: AppConfig) -> Self {
        let mut sources = SourceStore::new();
        for (name, content) in &config.sources {
            sources.install(name.clone(), content.clone());
        }
        let mut db = TimeTravelDb::new();
        let clock = LogicalClock::new();
        for (create_sql, annotation) in &config.tables {
            db.create_table(create_sql, annotation.clone())
                .unwrap_or_else(|e| panic!("installing table failed: {e}"));
        }
        for sql in &config.seed_sql {
            let time = clock.tick();
            db.execute_logged(sql, time)
                .unwrap_or_else(|e| panic!("seed statement `{sql}` failed: {e}"));
        }
        WarpServer {
            app_name: config.name,
            sources,
            db,
            router: config.router,
            clock,
            history: HistoryGraph::new(),
            conflicts: ConflictQueue::new(),
            replay_config: ReplayConfig::default(),
            pending_cookie_invalidations: BTreeSet::new(),
            reference_snapshot_commit: false,
            column_oblivious_repair: false,
            rng_counter: 0,
            session_counter: 0,
            store: None,
            pending_repair: None,
            ckpt_marks: crate::persist::CheckpointMarks::default(),
            maintenance: None,
        }
    }

    /// Adds a table after installation (used by tests and by applications
    /// that create tables during setup scripts).
    pub fn install_table(&mut self, create_sql: &str, annotation: TableAnnotation) {
        self.db
            .create_table(create_sql, annotation.clone())
            .unwrap_or_else(|e| panic!("installing table failed: {e}"));
        if self.store.is_some() {
            // The next delta checkpoint must carry the table's schema even
            // if no rows change, or compacting away this CreateTable record
            // would lose the table.
            if let Some(name) = warp_sql::parse(create_sql)
                .ok()
                .and_then(|stmt| stmt.table_name().map(|n| n.to_string()))
            {
                self.ckpt_marks.new_tables.push(name);
            }
        }
        self.log_event(&crate::persist::LogEvent::CreateTable {
            sql: create_sql.to_string(),
            annotation,
        });
    }

    /// Handles one HTTP request during normal execution and records the
    /// action in the history graph.
    pub fn handle(&mut self, mut request: HttpRequest) -> HttpResponse {
        // Queued cookie invalidation: delete the client's cookies before the
        // application sees the request, and tell the browser to do the same.
        let mut invalidation_cookies = Vec::new();
        if let Some(client_id) = request.warp.client_id.clone() {
            if self.pending_cookie_invalidations.remove(&client_id) {
                for (name, _) in request.cookies.iter() {
                    invalidation_cookies.push(format!("{name}="));
                }
                request.cookies.clear();
            }
        }
        let time = self.clock.tick();
        let entry = match self.router.resolve(&request.path) {
            Some(script) => script,
            None => {
                let response = HttpResponse::not_found(format!("no route for {}", request.path));
                self.record(
                    time,
                    &request,
                    &response,
                    "<unrouted>",
                    AppRunResult {
                        response: response.clone(),
                        loaded_files: Vec::new(),
                        queries: Vec::new(),
                        nondet: Vec::new(),
                        used_original_queries: Vec::new(),
                        script_error: None,
                        queries_reexecuted: 0,
                    },
                );
                return response;
            }
        };
        let result = run_application(AppRunContext {
            request: &request,
            entry_script: entry.clone(),
            sources: &self.sources,
            action_time: time,
            db: crate::apphost::DbAccess::Exclusive(&mut self.db),
            mode: ExecMode::Normal {
                clock: &self.clock,
                rng_counter: &mut self.rng_counter,
                session_counter: &mut self.session_counter,
            },
        });
        let mut response = result.response.clone();
        for c in invalidation_cookies {
            response.set_cookies.push(c);
        }
        self.record(time, &request, &response, &entry, result);
        response
    }

    fn record(
        &mut self,
        time: i64,
        request: &HttpRequest,
        response: &HttpResponse,
        entry: &str,
        result: AppRunResult,
    ) -> ActionId {
        self.record_served(time, request, response, entry, result, None)
    }

    /// Records one served action in the history graph (and the durable log,
    /// if any). The sharded engine calls this directly with `shard_meta =
    /// Some((gen, watermark))` captured at epoch start, because during a
    /// shard epoch `self.db` is checked out to the worker pool; it also
    /// defers checkpointing to the next epoch barrier, where the database is
    /// back in place.
    pub(crate) fn record_served(
        &mut self,
        time: i64,
        request: &HttpRequest,
        response: &HttpResponse,
        entry: &str,
        result: AppRunResult,
        shard_meta: Option<(warp_ttdb::Generation, i64)>,
    ) -> ActionId {
        let client = match (
            &request.warp.client_id,
            request.warp.visit_id,
            request.warp.request_id,
        ) {
            (Some(c), Some(v), Some(r)) => Some(ClientRef {
                client_id: c.clone(),
                visit_id: v,
                request_id: r,
            }),
            _ => None,
        };
        let id = self.history.record_action(ActionRecord {
            id: 0,
            time,
            request: request.clone(),
            response: response.clone(),
            client,
            entry_script: entry.to_string(),
            loaded_files: result.loaded_files,
            queries: result.queries,
            nondet: result.nondet,
            cancelled: false,
        });
        if self.store.is_some() {
            let action = self
                .history
                .action(id)
                .expect("action just recorded")
                .clone();
            let (gen, watermark) = match shard_meta {
                Some(meta) => meta,
                None => (
                    self.db.current_generation(),
                    self.db.synthetic_id_watermark(),
                ),
            };
            self.log_event(&crate::persist::LogEvent::Action {
                gen,
                clock_after: self.clock.now(),
                rng_after: self.rng_counter,
                session_after: self.session_counter,
                watermark_after: watermark,
                action: Box::new(action),
            });
            if shard_meta.is_none() {
                self.maybe_checkpoint();
            }
        }
        id
    }

    /// Accepts a batch of client-side browser logs (uploaded by the
    /// extension out of band, §5.2).
    pub fn upload_client_logs(&mut self, logs: Vec<PageVisitRecord>) {
        for log in logs {
            if self.store.is_some() {
                self.log_event(&crate::persist::LogEvent::ClientLog(log.clone()));
                self.ckpt_marks
                    .new_logs
                    .push((log.client_id.clone(), log.visit_id));
            }
            self.history.upload_client_log(log);
        }
        self.maybe_checkpoint();
    }

    /// Storage accounting for Warp's logs plus database versions (Table 6).
    pub fn logging_stats(&self) -> LoggingStats {
        let mut stats = self.history.logging_stats();
        // Database version storage beyond live rows is attributable to Warp.
        let db_stats: StorageStats = self.db.storage_stats();
        let live = db_stats.live_rows.max(1);
        let extra_versions = db_stats.total_versions.saturating_sub(db_stats.live_rows);
        let avg_row_bytes = db_stats.approximate_bytes / db_stats.total_versions.max(1);
        stats.db_bytes += extra_versions * avg_row_bytes;
        let _ = live;
        stats
    }

    /// Conflicts pending for a client (what the conflict-resolution page
    /// shows when the user next logs in).
    pub fn pending_conflicts(&self, client_id: &str) -> Vec<crate::conflict::Conflict> {
        self.conflicts
            .pending_for(client_id)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Garbage-collects the action history graph and database versions older
    /// than `before_time`. On a persistent server the GC is logged and
    /// immediately followed by a checkpoint, which compacts the durable log
    /// (all segments up to the checkpoint are deleted) — GC is what reclaims
    /// storage at both layers.
    pub fn garbage_collect(&mut self, before_time: i64) -> (usize, usize) {
        let removed = self.garbage_collect_unlogged(before_time);
        if self.store.is_some() {
            self.log_event(&crate::persist::LogEvent::Gc { before_time });
            // GC renumbers action IDs, which invalidates the incremental
            // bookkeeping — the checkpoint that follows must be (and is) a
            // full base; the flag guards any path that could defer it.
            self.ckpt_marks.needs_base = true;
            self.checkpoint();
            // The administrator just declared pre-cutoff history
            // disposable: the cold archive tier has no reader left either.
            if let Some(sink) = &mut self.store {
                let _ = sink.prune_cold();
            }
        }
        removed
    }

    /// The GC itself, shared by the public entry point and log replay.
    pub(crate) fn garbage_collect_unlogged(&mut self, before_time: i64) -> (usize, usize) {
        let actions = self.history.garbage_collect(before_time);
        let versions = self.db.garbage_collect(before_time).unwrap_or(0);
        (actions, versions)
    }
}

impl Transport for WarpServer {
    fn send(&mut self, request: HttpRequest) -> HttpResponse {
        self.handle(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_browser::Browser;

    fn tiny_wiki() -> AppConfig {
        let mut config = AppConfig::new("tiny-wiki");
        config.add_table(
            "CREATE TABLE page (page_id INTEGER PRIMARY KEY, title TEXT UNIQUE, body TEXT)",
            TableAnnotation::new()
                .row_id("page_id")
                .partitions(["title"]),
        );
        config.seed("INSERT INTO page (page_id, title, body) VALUES (1, 'Main', 'welcome')");
        config.add_source(
            "view.wasl",
            "let rows = db_query(\"SELECT body FROM page WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             if (len(rows) == 0) { echo(\"<p>missing</p>\"); } else { echo(\"<p>\" . rows[0][\"body\"] . \"</p>\"); }",
        );
        config.add_source(
            "edit.wasl",
            "db_query(\"UPDATE page SET body = '\" . sql_escape(param(\"body\")) . \"' WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             echo(\"<p>saved</p>\");",
        );
        config
    }

    #[test]
    fn serves_requests_and_records_actions() {
        let mut server = WarpServer::new(tiny_wiki());
        let r = server.send(HttpRequest::get("/view.wasl?title=Main"));
        assert!(r.body.contains("welcome"));
        let r = server.send(HttpRequest::post(
            "/edit.wasl",
            [("title", "Main"), ("body", "edited")],
        ));
        assert!(r.body.contains("saved"));
        let r = server.send(HttpRequest::get("/view.wasl?title=Main"));
        assert!(r.body.contains("edited"));
        assert_eq!(server.history.len(), 3);
        let actions = server.history.actions();
        assert_eq!(actions[0].entry_script, "view.wasl");
        assert_eq!(actions[1].queries.len(), 1);
        assert!(actions[1].queries[0].is_write);
        // Times are strictly increasing.
        assert!(actions[0].time < actions[1].time && actions[1].time < actions[2].time);
    }

    #[test]
    fn unknown_routes_get_404_and_are_still_recorded() {
        let mut server = WarpServer::new(tiny_wiki());
        let r = server.send(HttpRequest::get("/nope.php"));
        assert_eq!(r.status, 404);
        assert_eq!(server.history.len(), 1);
    }

    #[test]
    fn browser_end_to_end_with_warp_headers() {
        let mut server = WarpServer::new(tiny_wiki());
        let mut browser = Browser::new("client-alice");
        let visit = browser.visit("/view.wasl?title=Main", &mut server);
        assert!(visit.response.body.contains("welcome"));
        let logs = browser.take_logs();
        server.upload_client_logs(logs);
        // The action is correlated with the browser's visit.
        let action = &server.history.actions()[0];
        let client = action.client.as_ref().unwrap();
        assert_eq!(client.client_id, "client-alice");
        assert!(server
            .history
            .client_log("client-alice", client.visit_id)
            .is_some());
    }

    #[test]
    fn cookie_invalidation_applies_on_next_request() {
        let mut server = WarpServer::new(tiny_wiki());
        server
            .pending_cookie_invalidations
            .insert("client-x".to_string());
        let mut req = HttpRequest::get("/view.wasl?title=Main");
        req.warp.client_id = Some("client-x".to_string());
        req.warp.visit_id = Some(1);
        req.warp.request_id = Some(0);
        req.cookies.set("session", "stolen");
        let r = server.handle(req);
        assert!(r.set_cookies.iter().any(|c| c == "session="));
        assert!(server.pending_cookie_invalidations.is_empty());
    }

    #[test]
    fn logging_stats_grow_with_traffic() {
        let mut server = WarpServer::new(tiny_wiki());
        let before = server.logging_stats();
        for i in 0..10 {
            server.send(HttpRequest::post(
                "/edit.wasl",
                [("title", "Main"), ("body", &format!("edit {i}"))],
            ));
        }
        let after = server.logging_stats();
        assert!(after.total_bytes() > before.total_bytes());
        assert_eq!(after.actions, 10);
    }

    #[test]
    fn garbage_collect_trims_history_and_versions() {
        let mut server = WarpServer::new(tiny_wiki());
        for i in 0..5 {
            server.send(HttpRequest::post(
                "/edit.wasl",
                [("title", "Main"), ("body", &format!("edit {i}"))],
            ));
        }
        let cutoff = server.clock.now();
        server.send(HttpRequest::get("/view.wasl?title=Main"));
        let (actions_removed, versions_removed) = server.garbage_collect(cutoff);
        assert!(actions_removed >= 4);
        assert!(versions_removed >= 4);
        assert_eq!(server.history.len(), 1);
    }
}
