//! Statistics collected during normal execution and repair.
//!
//! These are the raw numbers behind the paper's evaluation tables: Table 6's
//! storage-per-page-visit accounting and Tables 7/8's re-execution counts
//! and repair-time breakdown.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Storage accounting for Warp's logs (Table 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoggingStats {
    /// Number of recorded actions (application runs).
    pub actions: usize,
    /// Number of distinct page visits observed.
    pub page_visits: usize,
    /// Bytes of browser-level logs uploaded by clients.
    pub browser_bytes: usize,
    /// Bytes of application-level logs (requests, responses, dependencies,
    /// non-determinism records).
    pub app_bytes: usize,
    /// Bytes of database-level logs (query text, results, row IDs) plus row
    /// version storage attributable to logging.
    pub db_bytes: usize,
}

impl LoggingStats {
    /// Total bytes across all three log levels.
    pub fn total_bytes(&self) -> usize {
        self.browser_bytes + self.app_bytes + self.db_bytes
    }

    /// Bytes stored per page visit, by level (the paper's Table 6 columns).
    pub fn per_page_visit(&self) -> (f64, f64, f64) {
        let n = self.page_visits.max(1) as f64;
        (
            self.browser_bytes as f64 / n,
            self.app_bytes as f64 / n,
            self.db_bytes as f64 / n,
        )
    }
}

/// Counters and wall-clock breakdown of one repair (Tables 7 and 8).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RepairStats {
    /// Page visits re-executed in the server-side browser / total page visits.
    pub page_visits_reexecuted: usize,
    /// Total page visits known to the log.
    pub page_visits_total: usize,
    /// Application runs re-executed / total recorded runs.
    pub app_runs_reexecuted: usize,
    /// Total application runs in the log.
    pub app_runs_total: usize,
    /// Database queries re-executed during repair.
    pub queries_reexecuted: usize,
    /// Total queries recorded in the log.
    pub queries_total: usize,
    /// Rows rolled back.
    pub rows_rolled_back: usize,
    /// Actions cancelled outright.
    pub actions_cancelled: usize,
    /// Conflicts queued for users.
    pub conflicts: usize,
    /// Independent dependency partitions the history decomposed into
    /// (0 when the classic sequential engine ran).
    pub partitions_total: usize,
    /// Partitions that contained repair seeds and were actually re-executed.
    pub partitions_repaired: usize,
    /// Escalation rounds: times re-execution touched partitions outside its
    /// own group, forcing groups to be merged and re-run.
    pub escalations: usize,
    /// Rounds re-run on whole-database clones because a worker batch
    /// touched a table outside its bounded-memory clone's footprint
    /// (0 for the sequential and full-clone engines).
    pub bounded_clone_fallbacks: usize,
    /// Worker threads used by the partitioned engine (0 = sequential).
    pub workers: usize,
    /// Tables whose stored rows the committed repair actually changed
    /// (from the mutation-tracked delta; 0 for aborted repairs).
    pub dirty_tables: usize,
    /// Row versions the committed repair removed plus added across all
    /// dirty tables — the size of the repair's physical write set, which
    /// is also what the commit record costs to build and log.
    pub dirty_rows: usize,
    /// Wall-clock time spent initialising repair (finding candidate actions).
    #[serde(skip)]
    pub time_init: Duration,
    /// Wall-clock time spent loading graph nodes.
    #[serde(skip)]
    pub time_graph: Duration,
    /// Wall-clock time spent in browser re-execution.
    #[serde(skip)]
    pub time_browser: Duration,
    /// Wall-clock time spent re-executing standalone database queries.
    #[serde(skip)]
    pub time_db: Duration,
    /// Wall-clock time spent re-executing application runs.
    #[serde(skip)]
    pub time_app: Duration,
    /// Wall-clock time spent in the repair controller itself.
    #[serde(skip)]
    pub time_ctrl: Duration,
    /// Wall-clock time spent building and logging the repair commit (delta
    /// drain + record encoding; for the snapshot-diff reference path, the
    /// pre-repair snapshot and the post-repair table diffs).
    #[serde(skip)]
    pub time_commit: Duration,
    /// Total wall-clock repair time.
    #[serde(skip)]
    pub time_total: Duration,
}

impl RepairStats {
    /// Formats the re-execution counters the way the paper's Table 7 rows
    /// report them (`re-executed / total`).
    pub fn summary_counts(&self) -> String {
        format!(
            "page visits {}/{}  app runs {}/{}  queries {}/{}",
            self.page_visits_reexecuted,
            self.page_visits_total,
            self.app_runs_reexecuted,
            self.app_runs_total,
            self.queries_reexecuted,
            self.queries_total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_page_visit_divides_by_visits() {
        let stats = LoggingStats {
            actions: 10,
            page_visits: 10,
            browser_bytes: 1000,
            app_bytes: 2000,
            db_bytes: 3000,
        };
        let (b, a, d) = stats.per_page_visit();
        assert_eq!((b, a, d), (100.0, 200.0, 300.0));
        assert_eq!(stats.total_bytes(), 6000);
        // Zero page visits must not divide by zero.
        let empty = LoggingStats::default();
        let (b, _, _) = empty.per_page_visit();
        assert_eq!(b, 0.0);
    }

    #[test]
    fn summary_counts_format() {
        let stats = RepairStats {
            page_visits_reexecuted: 14,
            page_visits_total: 1011,
            app_runs_reexecuted: 13,
            app_runs_total: 1223,
            queries_reexecuted: 258,
            queries_total: 24746,
            ..Default::default()
        };
        assert_eq!(
            stats.summary_counts(),
            "page visits 14/1011  app runs 13/1223  queries 258/24746"
        );
    }
}
