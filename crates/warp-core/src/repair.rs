//! The repair controller: rollback-and-re-execute repair of web applications.
//!
//! This module implements the paper's repair workflow end to end:
//!
//! 1. **Initiation** (§3.2, §5.5): either a retroactive patch to a source
//!    file (effective at a past time), or a user/administrator request to
//!    undo a past page visit.
//! 2. **Candidate selection**: actions that loaded the patched file (for
//!    retroactive patching) or belong to the cancelled visit (for undo).
//! 3. **Rollback and re-execution** over the time-travel database: the
//!    controller walks the action history in time order; actions explicitly
//!    queued are re-executed with patched code (non-determinism replayed),
//!    actions whose query dependencies intersect the modified partitions
//!    have their queries selectively re-executed, and everything else is
//!    skipped (§4).
//! 4. **Browser re-execution** (§5): when a response changes, the affected
//!    page visit is replayed DOM-level in a server-side browser; requests it
//!    re-issues replace the originals, requests it no longer issues are
//!    cancelled, and failures become queued conflicts.
//! 5. **Completion**: the repair generation is finalized (or aborted, for a
//!    non-admin undo that would cause conflicts for other users).

use crate::conflict::Conflict;
use crate::history::ActionId;
use crate::scheduler::{execute_actions, run_partitioned, CloneScope, RepairEnv, RepairStrategy};
use crate::server::WarpServer;
use crate::sourcefs::Patch;
use crate::stats::RepairStats;
use std::collections::BTreeSet;
use std::time::Instant;
use warp_ttdb::RepairSession;

/// How a repair is initiated.
#[derive(Debug, Clone)]
pub enum RepairRequest {
    /// Retroactively apply a security patch as of `from_time` (§3).
    RetroactivePatch {
        /// The patch to apply.
        patch: Patch,
        /// The past time from which the patch should be in effect.
        from_time: i64,
    },
    /// Undo a past page visit (§5.5), e.g. an administrator reverting an
    /// accidental permission grant.
    UndoVisit {
        /// The client whose visit is undone.
        client_id: String,
        /// The visit to undo.
        visit_id: u64,
        /// Administrators may proceed even if other users get conflicts;
        /// regular users may not.
        initiated_by_admin: bool,
    },
}

/// The result of a repair.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Counters and timing breakdown (Tables 7 and 8).
    pub stats: RepairStats,
    /// Conflicts raised during this repair.
    pub conflicts: Vec<Conflict>,
    /// True if the repair was aborted (user-initiated repair that would have
    /// caused conflicts for other users).
    pub aborted: bool,
    /// IDs of the actions that were fully re-executed, sorted. The
    /// partitioned engine must produce exactly the set the sequential engine
    /// produces (asserted by the equivalence proptests).
    pub reexecuted_actions: Vec<ActionId>,
    /// IDs of the actions that were cancelled, sorted.
    pub cancelled_actions: Vec<ActionId>,
}

impl WarpServer {
    /// Runs a repair to completion with the classic sequential engine and
    /// returns its outcome. Normal operation may continue between and after
    /// repairs; the repaired state becomes visible atomically when the
    /// repair generation is finalized.
    pub fn repair(&mut self, request: RepairRequest) -> RepairOutcome {
        self.repair_with(request, RepairStrategy::Sequential)
    }

    /// Runs a repair to completion with the given strategy.
    ///
    /// [`RepairStrategy::Sequential`] walks the whole history in time order
    /// on one thread, in place. [`RepairStrategy::Partitioned`] splits the
    /// history into independent dependency partitions (see
    /// [`crate::scheduler`]), re-executes the seeded partitions concurrently
    /// on a worker pool, and merges the results; it produces the same final
    /// state, re-executed action set and cancelled action set as the
    /// sequential engine.
    pub fn repair_with(
        &mut self,
        request: RepairRequest,
        strategy: RepairStrategy,
    ) -> RepairOutcome {
        let t_total = Instant::now();
        let mut stats = RepairStats::default();

        // Persistence: a repair is logged as begin + (commit | abort). The
        // begin record marks an in-progress repair for crash detection; the
        // commit record carries the repair's physical effect (per-table
        // row-version deltas, cancelled actions, conflicts, the new
        // generation), so recovery replays the outcome without re-running
        // the repair. The deltas come from the database's mutation tracker
        // (armed when the repair generation begins): every stored-row
        // mutation records the exact row versions it removed and added, so
        // building the commit costs O(rows changed) — no table is ever
        // snapshotted or diffed on this path.
        if self.store.is_some() {
            self.log_event(&crate::persist::LogEvent::RepairBegin(request.clone()));
        }
        // Test-only reference implementation (`reference_snapshot_commit`):
        // snapshot every table up front and diff after the repair, the
        // O(database) strategy the tracker replaced. Kept compiled in —
        // mirroring `RepairStrategy::PartitionedFullClone` — so equivalence
        // of the two commit paths is provable byte for byte.
        let pre_snapshot: Option<Vec<(String, Vec<Vec<warp_sql::Value>>)>> =
            if self.store.is_some() && self.reference_snapshot_commit {
                let t_commit = Instant::now();
                let snapshot = self
                    .db
                    .table_names()
                    .into_iter()
                    .map(|t| {
                        let rows = self.db.table_rows_snapshot(&t);
                        (t, rows)
                    })
                    .collect();
                stats.time_commit += t_commit.elapsed();
                Some(snapshot)
            } else {
                None
            };

        // Phase 1: initiation — work out the initial re-execution/cancel sets.
        let t_init = Instant::now();
        let mut seed_reexecute: BTreeSet<ActionId> = BTreeSet::new();
        let mut seed_cancel: BTreeSet<ActionId> = BTreeSet::new();
        let initiated_by_admin = match &request {
            RepairRequest::RetroactivePatch { patch, from_time } => {
                self.sources.apply_retroactive_patch(patch, *from_time);
                for id in self
                    .history
                    .actions_loading_file(&patch.filename, *from_time)
                {
                    seed_reexecute.insert(id);
                }
                true
            }
            RepairRequest::UndoVisit {
                client_id,
                visit_id,
                initiated_by_admin,
            } => {
                for id in self.history.actions_for_visit(client_id, *visit_id) {
                    seed_cancel.insert(id);
                }
                *initiated_by_admin
            }
        };
        stats.time_init = t_init.elapsed();

        // Phase 2: load the graph (totals for reporting).
        let t_graph = Instant::now();
        stats.app_runs_total = self.history.len();
        stats.queries_total = self.history.actions().iter().map(|a| a.queries.len()).sum();
        stats.page_visits_total = self
            .history
            .actions()
            .iter()
            .filter_map(|a| a.client.as_ref().map(|c| (c.client_id.clone(), c.visit_id)))
            .collect::<BTreeSet<_>>()
            .len();
        stats.workers = strategy.worker_count();
        stats.time_graph = t_graph.elapsed();

        // Phase 3: re-execution, sequential or partitioned.
        let run = {
            let env = RepairEnv {
                sources: &self.sources,
                router: &self.router,
                history: &self.history,
                replay_config: self.replay_config,
                column_oblivious: self.column_oblivious_repair,
            };
            match strategy {
                RepairStrategy::Sequential => {
                    let order: Vec<ActionId> = {
                        let mut ids: Vec<ActionId> =
                            self.history.actions().iter().map(|a| a.id).collect();
                        ids.sort_by_key(|&id| {
                            (self.history.action(id).map(|a| a.time).unwrap_or(0), id)
                        });
                        ids
                    };
                    let mut session = RepairSession::begin(&mut self.db);
                    session.set_column_oblivious(self.column_oblivious_repair);
                    execute_actions(
                        &env,
                        &mut self.db,
                        session,
                        &order,
                        &seed_reexecute,
                        &seed_cancel,
                        false,
                    )
                }
                RepairStrategy::Partitioned { workers }
                | RepairStrategy::PartitionedFullClone { workers } => {
                    let clone_scope = match strategy {
                        RepairStrategy::Partitioned { .. } => CloneScope::Footprint,
                        _ => CloneScope::Full,
                    };
                    let result = run_partitioned(
                        &env,
                        &mut self.db,
                        &seed_reexecute,
                        &seed_cancel,
                        workers.max(1),
                        initiated_by_admin,
                        clone_scope,
                    );
                    stats.partitions_total = result.partitions_total;
                    stats.partitions_repaired = result.partitions_repaired;
                    stats.escalations = result.escalations;
                    stats.bounded_clone_fallbacks = result.bounded_fallbacks;
                    result.run
                }
            }
        };

        // Phase 5: completion — the repaired state becomes visible (or the
        // repair generation is discarded) atomically.
        let t_ctrl = Instant::now();
        stats.page_visits_reexecuted = run.stats.page_visits_reexecuted;
        stats.app_runs_reexecuted = run.stats.app_runs_reexecuted;
        stats.queries_reexecuted = run.stats.queries_reexecuted;
        stats.rows_rolled_back = run.stats.rows_rolled_back;
        stats.actions_cancelled = run.stats.actions_cancelled;
        stats.time_db = run.stats.time_db;
        stats.time_app = run.stats.time_app;
        stats.time_browser = run.stats.time_browser;
        stats.conflicts = run.conflicts.len();
        let aborted = !initiated_by_admin && !run.conflicts.is_empty();
        if aborted {
            // The abort also discards the tracked mutation delta.
            let _ = self.db.abort_repair_generation();
        } else {
            self.db.finalize_repair_generation();
            for &id in &run.cancelled {
                if let Some(a) = self.history.action_mut(id) {
                    a.cancelled = true;
                }
            }
            for c in &run.conflicts {
                self.conflicts.push(c.clone());
            }
        }
        self.pending_cookie_invalidations
            .extend(run.cookie_invalidations.iter().cloned());

        // Build the committed repair's physical write set. The tracker was
        // fed by every mutation path — re-executed writes, rollbacks,
        // generation bookkeeping, merged worker deltas, even writes that
        // errored after their phase-2 rollback — so the commit record can
        // never miss a mutation.
        let t_commit = Instant::now();
        let delta = if aborted {
            warp_ttdb::RepairDelta::new()
        } else {
            self.db.drain_repair_delta()
        };
        stats.dirty_tables = delta.len();
        stats.dirty_rows = delta.values().map(|d| d.row_count()).sum();

        // Persistence: record the repair's outcome.
        if self.store.is_some() {
            let patch = match &request {
                RepairRequest::RetroactivePatch { patch, from_time } => {
                    Some((patch.clone(), *from_time))
                }
                RepairRequest::UndoVisit { .. } => None,
            };
            let cookie_invalidations: Vec<String> =
                run.cookie_invalidations.iter().cloned().collect();
            self.pending_repair = None;
            if aborted {
                self.log_event(&crate::persist::LogEvent::RepairAbort {
                    patch,
                    cookie_invalidations,
                });
            } else {
                // The wire format is unchanged from the snapshot-diff days:
                // per-table `(remove, add)` row sets in table order, rows in
                // canonical key order — the tracker nets its capture into
                // exactly that shape, so existing logs still recover.
                let table_diffs: Vec<crate::persist::TableDiff> = match &pre_snapshot {
                    None => delta
                        .into_iter()
                        .map(|(table, d)| (table, d.remove, d.add))
                        .collect(),
                    // Reference path: diff every table against the
                    // pre-repair snapshot (unchanged tables are detected by
                    // direct comparison first).
                    Some(snapshot) => snapshot
                        .iter()
                        .filter(|(table, before)| {
                            self.db
                                .raw()
                                .table(table)
                                .map(|t| &t.rows != before)
                                .unwrap_or(false)
                        })
                        .filter_map(|(table, before)| {
                            let after = self.db.table_rows_snapshot(table);
                            let d = warp_ttdb::row_diff(before, &after);
                            (!d.is_empty()).then(|| (table.clone(), d.remove, d.add))
                        })
                        .collect(),
                };
                // Cancellation flips flags on actions *below* the next
                // delta checkpoint's floor; mark them so the delta carries
                // the flips.
                self.ckpt_marks
                    .cancelled
                    .extend(run.cancelled.iter().copied());
                self.log_event(&crate::persist::LogEvent::RepairCommit(
                    crate::persist::RepairCommitRecord {
                        patch,
                        cancelled: run.cancelled.iter().copied().collect(),
                        conflicts: run.conflicts.clone(),
                        cookie_invalidations,
                        current_gen: self.db.current_generation(),
                        watermark: self.db.synthetic_id_watermark(),
                        table_diffs,
                    },
                ));
            }
        }
        // Close the commit-time span before any checkpoint: a due
        // checkpoint serializes the whole server state, and folding that
        // O(database) write into `time_commit` would falsify the metric
        // the commit benchmark gates on.
        stats.time_commit += t_commit.elapsed();
        if self.store.is_some() {
            self.maybe_checkpoint();
        }

        stats.time_ctrl = run.stats.time_ctrl + t_ctrl.elapsed();
        stats.time_total = t_total.elapsed();
        RepairOutcome {
            stats,
            conflicts: run.conflicts,
            aborted,
            reexecuted_actions: run.reexecuted.into_iter().collect(),
            cancelled_actions: run.cancelled.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppConfig;
    use warp_browser::Browser;
    use warp_http::HttpRequest;
    use warp_ttdb::TableAnnotation;

    /// A miniature wiki with a stored-XSS vulnerability in `view.wasl`
    /// (page bodies are emitted without sanitisation).
    fn vulnerable_wiki() -> AppConfig {
        let mut config = AppConfig::new("mini-wiki");
        config.add_table(
            "CREATE TABLE page (page_id INTEGER PRIMARY KEY, title TEXT UNIQUE, body TEXT)",
            TableAnnotation::new()
                .row_id("page_id")
                .partitions(["title"]),
        );
        config.seed("INSERT INTO page (page_id, title, body) VALUES (1, 'Main', 'welcome'), (2, 'Secret', 'secret data')");
        config.add_source(
            "view.wasl",
            "let rows = db_query(\"SELECT body FROM page WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             if (len(rows) == 0) { echo(\"<p>missing</p>\"); return; } \
             echo(\"<div id=\\\"content\\\">\" . rows[0][\"body\"] . \"</div>\"); \
             echo(\"<form action=\\\"/edit.wasl\\\" method=\\\"post\\\">\
                   <input type=\\\"hidden\\\" name=\\\"title\\\" value=\\\"\" . param(\"title\") . \"\\\"/>\
                   <textarea name=\\\"body\\\">\" . rows[0][\"body\"] . \"</textarea></form>\");",
        );
        config.add_source(
            "edit.wasl",
            "db_query(\"UPDATE page SET body = '\" . sql_escape(param(\"body\")) . \"' WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             echo(\"<p>saved</p>\");",
        );
        config
    }

    /// The patch for the stored XSS: sanitise the body before emitting it.
    fn xss_patch() -> Patch {
        Patch::new(
            "view.wasl",
            "let rows = db_query(\"SELECT body FROM page WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             if (len(rows) == 0) { echo(\"<p>missing</p>\"); return; } \
             echo(\"<div id=\\\"content\\\">\" . htmlspecialchars(rows[0][\"body\"]) . \"</div>\"); \
             echo(\"<form action=\\\"/edit.wasl\\\" method=\\\"post\\\">\
                   <input type=\\\"hidden\\\" name=\\\"title\\\" value=\\\"\" . htmlspecialchars(param(\"title\")) . \"\\\"/>\
                   <textarea name=\\\"body\\\">\" . htmlspecialchars(rows[0][\"body\"]) . \"</textarea></form>\");",
            "sanitise page bodies (stored XSS)",
        )
    }

    /// Runs the stored-XSS scenario: the attacker injects script into Main,
    /// a victim views it (the script overwrites the Secret page via the
    /// victim's browser), and an innocent user edits an unrelated page.
    fn run_stored_xss_scenario(server: &mut WarpServer) {
        // Attacker stores the XSS payload.
        let attacker = Browser::new("attacker");
        let payload = "http_post(\"/edit.wasl\", {\"title\": \"Secret\", \"body\": \"DEFACED\"});";
        let inject = format!("<script>{payload}</script>");
        server.handle(HttpRequest::post(
            "/edit.wasl",
            [("title", "Main"), ("body", inject.as_str())],
        ));
        // The attacker needs no extension for this attack.
        let _ = attacker;
        // Victim views the infected page; the script runs in the victim's
        // browser and defaces the Secret page using their requests.
        let mut victim = Browser::new("victim");
        let _visit = victim.visit("/view.wasl?title=Main", server);
        server.upload_client_logs(victim.take_logs());
        // An unaffected user edits an unrelated page.
        let mut other = Browser::new("other");
        let mut visit = other.visit("/view.wasl?title=Main", server);
        let _ = &mut visit;
        server.upload_client_logs(other.take_logs());
    }

    #[test]
    fn stored_xss_attack_then_retroactive_patch_recovers() {
        let mut server = WarpServer::new(vulnerable_wiki());
        run_stored_xss_scenario(&mut server);
        // The attack worked: Secret is defaced.
        let check = server.handle(HttpRequest::get("/view.wasl?title=Secret"));
        assert!(check.body.contains("DEFACED"));
        // Retroactively patch the XSS.
        let outcome = server.repair(RepairRequest::RetroactivePatch {
            patch: xss_patch(),
            from_time: 0,
        });
        assert!(!outcome.aborted);
        // The defacement is gone and the original secret content is back.
        let check = server.handle(HttpRequest::get("/view.wasl?title=Secret"));
        assert!(
            !check.body.contains("DEFACED"),
            "attack effect should be undone: {}",
            check.body
        );
        assert!(check.body.contains("secret data"));
        // The attacker's stored payload is still in the page body (it is data
        // the attacker submitted), but it is now rendered harmless.
        let main = server.handle(HttpRequest::get("/view.wasl?title=Main"));
        assert!(main.body.contains("&lt;script&gt;") || !main.body.contains("<script>"));
        // Only a small fraction of actions were re-executed.
        assert!(outcome.stats.app_runs_reexecuted >= 1);
        assert!(outcome.stats.app_runs_reexecuted <= server.history.len());
    }

    #[test]
    fn unaffected_actions_are_not_reexecuted() {
        let mut server = WarpServer::new(vulnerable_wiki());
        // Plenty of traffic that never touches the vulnerable code path's
        // attack pages.
        for i in 0..20 {
            server.handle(HttpRequest::post(
                "/edit.wasl",
                [("title", "Main"), ("body", &format!("revision {i}"))],
            ));
        }
        run_stored_xss_scenario(&mut server);
        let total = server.history.len();
        let outcome = server.repair(RepairRequest::RetroactivePatch {
            patch: xss_patch(),
            from_time: 0,
        });
        // The view.wasl runs are re-executed (they loaded the patched file),
        // but the 20 edit.wasl runs are not.
        assert!(outcome.stats.app_runs_reexecuted < total);
        assert!(outcome.stats.app_runs_reexecuted <= 6);
    }

    #[test]
    fn admin_undo_of_a_visit_rolls_back_its_writes() {
        let mut server = WarpServer::new(vulnerable_wiki());
        let mut admin = Browser::new("admin");
        let visit = admin.visit("/view.wasl?title=Main", &mut server);
        let mut visit = visit;
        admin.fill(&mut visit, "body", "mistaken edit");
        let _after = admin.submit_form(&mut visit, "/edit.wasl", &mut server);
        server.upload_client_logs(admin.take_logs());
        let check = server.handle(HttpRequest::get("/view.wasl?title=Main"));
        assert!(check.body.contains("mistaken edit"));
        let outcome = server.repair(RepairRequest::UndoVisit {
            client_id: "admin".to_string(),
            visit_id: visit.visit_id,
            initiated_by_admin: true,
        });
        assert!(!outcome.aborted);
        let check = server.handle(HttpRequest::get("/view.wasl?title=Main"));
        assert!(
            check.body.contains("welcome"),
            "undo should restore the original body: {}",
            check.body
        );
    }

    #[test]
    fn non_admin_undo_that_causes_conflicts_is_aborted() {
        let mut server = WarpServer::new(vulnerable_wiki());
        // A user edit followed by a dependent read from another user whose
        // replay will conflict (no extension, so any change conflicts).
        let mut user = Browser::new("user-1");
        let mut visit = user.visit("/view.wasl?title=Main", &mut server);
        user.fill(&mut visit, "body", "user-1 content");
        let _ = user.submit_form(&mut visit, "/edit.wasl", &mut server);
        server.upload_client_logs(user.take_logs());
        // Another user (no extension) views the page written by user-1.
        let other = Browser::without_extension("user-2");
        let mut req = HttpRequest::get("/view.wasl?title=Main");
        req.warp.client_id = Some("user-2".to_string());
        req.warp.visit_id = Some(1);
        req.warp.request_id = Some(0);
        let _ = server.handle(req);
        let _ = other;
        let before = server.handle(HttpRequest::get("/view.wasl?title=Main"));
        let outcome = server.repair(RepairRequest::UndoVisit {
            client_id: "user-1".to_string(),
            visit_id: visit.visit_id,
            initiated_by_admin: false,
        });
        assert!(outcome.aborted, "non-admin undo with conflicts must abort");
        let after = server.handle(HttpRequest::get("/view.wasl?title=Main"));
        assert_eq!(
            before.body, after.body,
            "aborted repair must not change state"
        );
    }
}
