//! The repair controller: rollback-and-re-execute repair of web applications.
//!
//! This module implements the paper's repair workflow end to end:
//!
//! 1. **Initiation** (§3.2, §5.5): either a retroactive patch to a source
//!    file (effective at a past time), or a user/administrator request to
//!    undo a past page visit.
//! 2. **Candidate selection**: actions that loaded the patched file (for
//!    retroactive patching) or belong to the cancelled visit (for undo).
//! 3. **Rollback and re-execution** over the time-travel database: the
//!    controller walks the action history in time order; actions explicitly
//!    queued are re-executed with patched code (non-determinism replayed),
//!    actions whose query dependencies intersect the modified partitions
//!    have their queries selectively re-executed, and everything else is
//!    skipped (§4).
//! 4. **Browser re-execution** (§5): when a response changes, the affected
//!    page visit is replayed DOM-level in a server-side browser; requests it
//!    re-issues replace the originals, requests it no longer issues are
//!    cancelled, and failures become queued conflicts.
//! 5. **Completion**: the repair generation is finalized (or aborted, for a
//!    non-admin undo that would cause conflicts for other users).

use crate::apphost::{run_application, AppRunContext, AppRunResult, ExecMode};
use crate::conflict::{Conflict, ConflictKind};
use crate::history::{ActionId, ActionRecord};
use crate::server::WarpServer;
use crate::sourcefs::Patch;
use crate::stats::RepairStats;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;
use warp_browser::{replay_visit, ReplayOutcome};
use warp_http::{HttpRequest, HttpResponse, Transport};
use warp_ttdb::RepairSession;

/// How a repair is initiated.
#[derive(Debug, Clone)]
pub enum RepairRequest {
    /// Retroactively apply a security patch as of `from_time` (§3).
    RetroactivePatch {
        /// The patch to apply.
        patch: Patch,
        /// The past time from which the patch should be in effect.
        from_time: i64,
    },
    /// Undo a past page visit (§5.5), e.g. an administrator reverting an
    /// accidental permission grant.
    UndoVisit {
        /// The client whose visit is undone.
        client_id: String,
        /// The visit to undo.
        visit_id: u64,
        /// Administrators may proceed even if other users get conflicts;
        /// regular users may not.
        initiated_by_admin: bool,
    },
}

/// The result of a repair.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Counters and timing breakdown (Tables 7 and 8).
    pub stats: RepairStats,
    /// Conflicts raised during this repair.
    pub conflicts: Vec<Conflict>,
    /// True if the repair was aborted (user-initiated repair that would have
    /// caused conflicts for other users).
    pub aborted: bool,
}

/// A transport handed to the server-side re-execution browser. Requests the
/// replayed page issues are *collected* for the repair controller to process
/// (re-execute or record as new actions) instead of being executed directly.
#[derive(Debug, Default)]
struct CollectingTransport {
    requests: Vec<HttpRequest>,
}

impl Transport for CollectingTransport {
    fn send(&mut self, request: HttpRequest) -> HttpResponse {
        self.requests.push(request);
        // The replayed page does not get to observe repaired responses
        // directly; the repair controller re-executes the corresponding
        // actions itself.
        HttpResponse::ok("")
    }
}

impl WarpServer {
    /// Runs a repair to completion and returns its outcome. Normal operation
    /// may continue between and after repairs; the repaired state becomes
    /// visible atomically when the repair generation is finalized.
    pub fn repair(&mut self, request: RepairRequest) -> RepairOutcome {
        let t_total = Instant::now();
        let mut stats = RepairStats::default();
        let mut conflicts: Vec<Conflict> = Vec::new();

        // Phase 1: initiation — work out the initial re-execution/cancel sets.
        let t_init = Instant::now();
        let mut to_reexecute: BTreeSet<ActionId> = BTreeSet::new();
        let mut to_cancel: BTreeSet<ActionId> = BTreeSet::new();
        let mut request_overrides: BTreeMap<ActionId, HttpRequest> = BTreeMap::new();
        let initiated_by_admin = match &request {
            RepairRequest::RetroactivePatch { patch, from_time } => {
                self.sources.apply_retroactive_patch(patch, *from_time);
                for id in self.history.actions_loading_file(&patch.filename, *from_time) {
                    to_reexecute.insert(id);
                }
                true
            }
            RepairRequest::UndoVisit { client_id, visit_id, initiated_by_admin } => {
                for id in self.history.actions_for_visit(client_id, *visit_id) {
                    to_cancel.insert(id);
                }
                *initiated_by_admin
            }
        };
        stats.time_init = t_init.elapsed();

        // Phase 2: load the graph (totals for reporting).
        let t_graph = Instant::now();
        stats.app_runs_total = self.history.len();
        stats.queries_total = self.history.actions().iter().map(|a| a.queries.len()).sum();
        stats.page_visits_total = self
            .history
            .actions()
            .iter()
            .filter_map(|a| a.client.as_ref().map(|c| (c.client_id.clone(), c.visit_id)))
            .collect::<BTreeSet<_>>()
            .len();
        let action_order: Vec<ActionId> = {
            let mut ids: Vec<ActionId> = self.history.actions().iter().map(|a| a.id).collect();
            ids.sort_by_key(|&id| (self.history.action(id).map(|a| a.time).unwrap_or(0), id));
            ids
        };
        stats.time_graph = t_graph.elapsed();

        // Phase 3: the main repair loop, in time order.
        let mut session = RepairSession::begin(&mut self.db);
        let mut reexecuted_visits: BTreeSet<(String, u64)> = BTreeSet::new();
        for id in action_order {
            let action = match self.history.action(id) {
                Some(a) if !a.cancelled => a.clone(),
                _ => continue,
            };
            if to_cancel.contains(&id) {
                let t = Instant::now();
                self.cancel_action(&mut session, &action, &mut stats);
                stats.time_db += t.elapsed();
                continue;
            }
            let explicitly_queued = to_reexecute.contains(&id);
            let mut needs_full_reexecution = explicitly_queued;
            if !needs_full_reexecution {
                // Selective query re-execution (§4.1): only queries whose
                // partitions were modified are re-executed; the run itself is
                // re-executed only if a read query's result changed.
                let affected: Vec<usize> = action
                    .queries
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| session.dependency_affected(&q.dependency))
                    .map(|(i, _)| i)
                    .collect();
                if affected.is_empty() {
                    continue;
                }
                let t = Instant::now();
                for i in affected {
                    let q = &action.queries[i];
                    let stmt = match warp_sql::parse(&q.sql) {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    if q.is_write {
                        let _ = session.reexecute_write(&mut self.db, &stmt, q.time, &q.written_row_ids);
                        stats.queries_reexecuted += 1;
                    } else {
                        match session.reexecute_read(&mut self.db, &stmt, q.time) {
                            Ok(out) => {
                                stats.queries_reexecuted += 1;
                                if out.result.fingerprint() != q.result_fingerprint {
                                    needs_full_reexecution = true;
                                }
                            }
                            Err(_) => needs_full_reexecution = true,
                        }
                    }
                }
                stats.time_db += t.elapsed();
                if !needs_full_reexecution {
                    continue;
                }
            }
            // Full application re-execution.
            let t_app = Instant::now();
            let effective_request =
                request_overrides.get(&id).cloned().unwrap_or_else(|| action.request.clone());
            let result = self.reexecute_action(&mut session, &action, &effective_request);
            stats.app_runs_reexecuted += 1;
            stats.queries_reexecuted += result.queries_reexecuted;
            // Roll back the effects of original writes the patched run no
            // longer performs (this is how an attack's database changes are
            // undone when retroactive patching makes them disappear).
            for (i, q) in action.queries.iter().enumerate() {
                let matched = result.used_original_queries.get(i).copied().unwrap_or(false);
                if q.is_write && !matched {
                    let _ = session.rollback_rows(
                        &mut self.db,
                        &q.dependency.table,
                        &q.written_row_ids,
                        q.time,
                    );
                    stats.rows_rolled_back += q.written_row_ids.len();
                    session.note_modified(&q.dependency.write_partitions);
                }
            }
            stats.time_app += t_app.elapsed();
            let response_changed = result.response.fingerprint() != action.response.fingerprint();
            if let Some(err) = &result.script_error {
                conflicts.push(Conflict::new(
                    action.client.as_ref().map(|c| c.client_id.as_str()).unwrap_or("<server>"),
                    action.client.as_ref().map(|c| c.visit_id).unwrap_or(0),
                    &action.request.path,
                    ConflictKind::ReexecutionFailed(err.clone()),
                ));
            }
            if !response_changed {
                continue;
            }
            // Phase 4: browser re-execution for the page visit that received
            // the changed response.
            let Some(client) = action.client.clone() else { continue };
            let visit_key = (client.client_id.clone(), client.visit_id);
            if reexecuted_visits.contains(&visit_key) {
                continue;
            }
            reexecuted_visits.insert(visit_key);
            stats.page_visits_reexecuted += 1;
            let t_browser = Instant::now();
            let replay = self.replay_client_visit(&client.client_id, client.visit_id, &result.response);
            stats.time_browser += t_browser.elapsed();
            match replay {
                Some(outcome) => {
                    if let Some(reason) = outcome.conflict.clone() {
                        conflicts.push(Conflict::new(
                            &client.client_id,
                            client.visit_id,
                            &action.request.path,
                            ConflictKind::BrowserReplay(reason),
                        ));
                        // Per §5.4: queue the conflict and assume subsequent
                        // requests are unchanged.
                        continue;
                    }
                    // Requests re-issued by the replayed page replace the
                    // originals; requests no longer issued are cancelled.
                    let mut reissued: BTreeSet<u64> = BTreeSet::new();
                    for replayed in &outcome.requests {
                        match replayed.matched_request_id {
                            Some(orig_request_id) => {
                                reissued.insert(orig_request_id);
                                if let Some(target) = self.history.action_for_request(
                                    &client.client_id,
                                    client.visit_id,
                                    orig_request_id,
                                ) {
                                    if target != id {
                                        request_overrides
                                            .insert(target, replayed.request.clone());
                                        to_reexecute.insert(target);
                                    }
                                }
                            }
                            None => {
                                // A brand-new request that did not exist
                                // during the original execution: run it now
                                // inside the repair generation.
                                let t = Instant::now();
                                let fresh = self.run_fresh_in_repair(
                                    &mut session,
                                    &replayed.request,
                                    action.time,
                                );
                                stats.queries_reexecuted += fresh.queries_reexecuted;
                                stats.time_app += t.elapsed();
                            }
                        }
                    }
                    for other_id in
                        self.history.actions_for_visit(&client.client_id, client.visit_id)
                    {
                        if other_id == id {
                            continue;
                        }
                        let other = match self.history.action(other_id) {
                            Some(a) => a,
                            None => continue,
                        };
                        let other_request_id =
                            other.client.as_ref().map(|c| c.request_id).unwrap_or(u64::MAX);
                        if !reissued.contains(&other_request_id) && !other.cancelled {
                            to_cancel.insert(other_id);
                        }
                    }
                }
                None => {
                    // No client log (extension not installed): Warp cannot
                    // verify the browser's behaviour; inform the user.
                    conflicts.push(Conflict::new(
                        &client.client_id,
                        client.visit_id,
                        &action.request.path,
                        ConflictKind::BrowserReplay(warp_browser::ConflictReason::NoClientLog),
                    ));
                }
            }
        }

        // Phase 5: completion.
        let t_ctrl = Instant::now();
        stats.conflicts = conflicts.len();
        stats.rows_rolled_back = stats.rows_rolled_back.max(session.rolled_back_rows);
        let aborted = !initiated_by_admin && !conflicts.is_empty();
        if aborted {
            let _ = session.abort(&mut self.db);
        } else {
            session.finalize(&mut self.db);
            for c in &conflicts {
                self.conflicts.push(c.clone());
            }
        }
        stats.time_ctrl = t_ctrl.elapsed();
        stats.time_total = t_total.elapsed();
        RepairOutcome { stats, conflicts, aborted }
    }

    /// Re-executes one recorded action with the (possibly patched) sources
    /// and the repair session.
    fn reexecute_action(
        &mut self,
        session: &mut RepairSession,
        action: &ActionRecord,
        request: &HttpRequest,
    ) -> AppRunResult {
        let entry = self
            .router
            .resolve(&request.path)
            .unwrap_or_else(|| action.entry_script.clone());
        run_application(AppRunContext {
            request,
            entry_script: entry,
            sources: &self.sources,
            action_time: action.time,
            db: &mut self.db,
            mode: ExecMode::Repair { session, original: Some(action) },
        })
    }

    /// Executes a brand-new request (discovered during browser replay) inside
    /// the repair generation at the given time.
    fn run_fresh_in_repair(
        &mut self,
        session: &mut RepairSession,
        request: &HttpRequest,
        time: i64,
    ) -> AppRunResult {
        let entry = match self.router.resolve(&request.path) {
            Some(e) => e,
            None => {
                return AppRunResult {
                    response: HttpResponse::not_found("no route"),
                    loaded_files: Vec::new(),
                    queries: Vec::new(),
                    nondet: Vec::new(),
                    used_original_queries: Vec::new(),
                    script_error: None,
                    queries_reexecuted: 0,
                }
            }
        };
        run_application(AppRunContext {
            request,
            entry_script: entry,
            sources: &self.sources,
            action_time: time,
            db: &mut self.db,
            mode: ExecMode::Repair { session, original: None },
        })
    }

    /// Rolls back everything an action wrote and marks it cancelled.
    fn cancel_action(
        &mut self,
        session: &mut RepairSession,
        action: &ActionRecord,
        stats: &mut RepairStats,
    ) {
        for q in &action.queries {
            if q.is_write {
                let _ = session.rollback_rows(
                    &mut self.db,
                    &q.dependency.table,
                    &q.written_row_ids,
                    q.time,
                );
                stats.rows_rolled_back += q.written_row_ids.len();
                session.note_modified(&q.dependency.write_partitions);
            }
        }
        if let Some(a) = self.history.action_mut(action.id) {
            a.cancelled = true;
        }
        stats.actions_cancelled += 1;
    }

    /// Replays a client's page visit against the repaired response. Returns
    /// `None` when the client uploaded no log for that visit.
    fn replay_client_visit(
        &mut self,
        client_id: &str,
        visit_id: u64,
        new_response: &HttpResponse,
    ) -> Option<ReplayOutcome> {
        let record = self.history.client_log(client_id, visit_id)?.clone();
        // The re-execution browser gets the cookies the original request to
        // this visit carried.
        let cookies = self
            .history
            .actions_for_visit(client_id, visit_id)
            .first()
            .and_then(|&id| self.history.action(id))
            .map(|a| a.request.cookies.clone())
            .unwrap_or_default();
        let mut transport = CollectingTransport::default();
        let config = self.replay_config;
        let outcome = replay_visit(&record, new_response, cookies.clone(), &mut transport, &config);
        // Queue a cookie invalidation if the repaired cookie differs from the
        // user's real cookie (§5.3).
        if outcome.is_clean() && outcome.cookies != cookies {
            self.pending_cookie_invalidations.insert(client_id.to_string());
        }
        Some(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppConfig;
    use warp_browser::Browser;
    use warp_ttdb::TableAnnotation;

    /// A miniature wiki with a stored-XSS vulnerability in `view.wasl`
    /// (page bodies are emitted without sanitisation).
    fn vulnerable_wiki() -> AppConfig {
        let mut config = AppConfig::new("mini-wiki");
        config.add_table(
            "CREATE TABLE page (page_id INTEGER PRIMARY KEY, title TEXT UNIQUE, body TEXT)",
            TableAnnotation::new().row_id("page_id").partitions(["title"]),
        );
        config.seed("INSERT INTO page (page_id, title, body) VALUES (1, 'Main', 'welcome'), (2, 'Secret', 'secret data')");
        config.add_source(
            "view.wasl",
            "let rows = db_query(\"SELECT body FROM page WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             if (len(rows) == 0) { echo(\"<p>missing</p>\"); return; } \
             echo(\"<div id=\\\"content\\\">\" . rows[0][\"body\"] . \"</div>\"); \
             echo(\"<form action=\\\"/edit.wasl\\\" method=\\\"post\\\">\
                   <input type=\\\"hidden\\\" name=\\\"title\\\" value=\\\"\" . param(\"title\") . \"\\\"/>\
                   <textarea name=\\\"body\\\">\" . rows[0][\"body\"] . \"</textarea></form>\");",
        );
        config.add_source(
            "edit.wasl",
            "db_query(\"UPDATE page SET body = '\" . sql_escape(param(\"body\")) . \"' WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             echo(\"<p>saved</p>\");",
        );
        config
    }

    /// The patch for the stored XSS: sanitise the body before emitting it.
    fn xss_patch() -> Patch {
        Patch::new(
            "view.wasl",
            "let rows = db_query(\"SELECT body FROM page WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             if (len(rows) == 0) { echo(\"<p>missing</p>\"); return; } \
             echo(\"<div id=\\\"content\\\">\" . htmlspecialchars(rows[0][\"body\"]) . \"</div>\"); \
             echo(\"<form action=\\\"/edit.wasl\\\" method=\\\"post\\\">\
                   <input type=\\\"hidden\\\" name=\\\"title\\\" value=\\\"\" . htmlspecialchars(param(\"title\")) . \"\\\"/>\
                   <textarea name=\\\"body\\\">\" . htmlspecialchars(rows[0][\"body\"]) . \"</textarea></form>\");",
            "sanitise page bodies (stored XSS)",
        )
    }

    /// Runs the stored-XSS scenario: the attacker injects script into Main,
    /// a victim views it (the script overwrites the Secret page via the
    /// victim's browser), and an innocent user edits an unrelated page.
    fn run_stored_xss_scenario(server: &mut WarpServer) {
        // Attacker stores the XSS payload.
        let attacker = Browser::new("attacker");
        let payload = "http_post(\"/edit.wasl\", {\"title\": \"Secret\", \"body\": \"DEFACED\"});";
        let inject = format!("<script>{payload}</script>");
        server.handle(HttpRequest::post("/edit.wasl", [("title", "Main"), ("body", inject.as_str())]));
        let _ = attacker; // The attacker needs no extension for this attack.
        // Victim views the infected page; the script runs in her browser and
        // defaces the Secret page using her requests.
        let mut victim = Browser::new("victim");
        let _visit = victim.visit("/view.wasl?title=Main", server);
        server.upload_client_logs(victim.take_logs());
        // An unaffected user edits an unrelated page.
        let mut other = Browser::new("other");
        let mut visit = other.visit("/view.wasl?title=Main", server);
        let _ = &mut visit;
        server.upload_client_logs(other.take_logs());
    }

    #[test]
    fn stored_xss_attack_then_retroactive_patch_recovers() {
        let mut server = WarpServer::new(vulnerable_wiki());
        run_stored_xss_scenario(&mut server);
        // The attack worked: Secret is defaced.
        let check = server.handle(HttpRequest::get("/view.wasl?title=Secret"));
        assert!(check.body.contains("DEFACED"));
        // Retroactively patch the XSS.
        let outcome = server.repair(RepairRequest::RetroactivePatch { patch: xss_patch(), from_time: 0 });
        assert!(!outcome.aborted);
        // The defacement is gone and the original secret content is back.
        let check = server.handle(HttpRequest::get("/view.wasl?title=Secret"));
        assert!(!check.body.contains("DEFACED"), "attack effect should be undone: {}", check.body);
        assert!(check.body.contains("secret data"));
        // The attacker's stored payload is still in the page body (it is data
        // the attacker submitted), but it is now rendered harmless.
        let main = server.handle(HttpRequest::get("/view.wasl?title=Main"));
        assert!(main.body.contains("&lt;script&gt;") || !main.body.contains("<script>"));
        // Only a small fraction of actions were re-executed.
        assert!(outcome.stats.app_runs_reexecuted >= 1);
        assert!(outcome.stats.app_runs_reexecuted <= server.history.len());
    }

    #[test]
    fn unaffected_actions_are_not_reexecuted() {
        let mut server = WarpServer::new(vulnerable_wiki());
        // Plenty of traffic that never touches the vulnerable code path's
        // attack pages.
        for i in 0..20 {
            server.handle(HttpRequest::post(
                "/edit.wasl",
                [("title", "Main"), ("body", &format!("revision {i}"))],
            ));
        }
        run_stored_xss_scenario(&mut server);
        let total = server.history.len();
        let outcome = server.repair(RepairRequest::RetroactivePatch { patch: xss_patch(), from_time: 0 });
        // The view.wasl runs are re-executed (they loaded the patched file),
        // but the 20 edit.wasl runs are not.
        assert!(outcome.stats.app_runs_reexecuted < total);
        assert!(outcome.stats.app_runs_reexecuted <= 6);
    }

    #[test]
    fn admin_undo_of_a_visit_rolls_back_its_writes() {
        let mut server = WarpServer::new(vulnerable_wiki());
        let mut admin = Browser::new("admin");
        let visit = admin.visit("/view.wasl?title=Main", &mut server);
        let mut visit = visit;
        admin.fill(&mut visit, "body", "mistaken edit");
        let _after = admin.submit_form(&mut visit, "/edit.wasl", &mut server);
        server.upload_client_logs(admin.take_logs());
        let check = server.handle(HttpRequest::get("/view.wasl?title=Main"));
        assert!(check.body.contains("mistaken edit"));
        let outcome = server.repair(RepairRequest::UndoVisit {
            client_id: "admin".to_string(),
            visit_id: visit.visit_id,
            initiated_by_admin: true,
        });
        assert!(!outcome.aborted);
        let check = server.handle(HttpRequest::get("/view.wasl?title=Main"));
        assert!(check.body.contains("welcome"), "undo should restore the original body: {}", check.body);
    }

    #[test]
    fn non_admin_undo_that_causes_conflicts_is_aborted() {
        let mut server = WarpServer::new(vulnerable_wiki());
        // A user edit followed by a dependent read from another user whose
        // replay will conflict (no extension, so any change conflicts).
        let mut user = Browser::new("user-1");
        let mut visit = user.visit("/view.wasl?title=Main", &mut server);
        user.fill(&mut visit, "body", "user-1 content");
        let _ = user.submit_form(&mut visit, "/edit.wasl", &mut server);
        server.upload_client_logs(user.take_logs());
        // Another user (no extension) views the page written by user-1.
        let other = Browser::without_extension("user-2");
        let mut req = HttpRequest::get("/view.wasl?title=Main");
        req.warp.client_id = Some("user-2".to_string());
        req.warp.visit_id = Some(1);
        req.warp.request_id = Some(0);
        let _ = server.handle(req);
        let _ = other;
        let before = server.handle(HttpRequest::get("/view.wasl?title=Main"));
        let outcome = server.repair(RepairRequest::UndoVisit {
            client_id: "user-1".to_string(),
            visit_id: visit.visit_id,
            initiated_by_admin: false,
        });
        assert!(outcome.aborted, "non-admin undo with conflicts must abort");
        let after = server.handle(HttpRequest::get("/view.wasl?title=Main"));
        assert_eq!(before.body, after.body, "aborted repair must not change state");
    }
}
