//! Application configuration: sources, schema annotations, routes, seed
//! data — plus the server-level configuration that adds a storage backend.

use warp_http::Router;
use warp_store::{StorageBackend, StoreOptions};
use warp_ttdb::TableAnnotation;

/// Everything needed to install a WASL application on a [`crate::WarpServer`].
///
/// This is the analog of deploying a PHP application onto Apache/PostgreSQL:
/// the source tree, the `CREATE TABLE` schema with Warp's row-ID/partition
/// annotations (paper §8.1), the URL routes, and any initial data.
#[derive(Debug, Clone, Default)]
pub struct AppConfig {
    /// Application name (used in logs and reports).
    pub name: String,
    /// Source files: `(filename, content)`.
    pub sources: Vec<(String, String)>,
    /// Tables: `(CREATE TABLE statement, annotation)`.
    pub tables: Vec<(String, TableAnnotation)>,
    /// URL router.
    pub router: Router,
    /// SQL statements run once at install time to seed initial data.
    pub seed_sql: Vec<String>,
}

impl AppConfig {
    /// Creates an empty configuration.
    pub fn new(name: impl Into<String>) -> Self {
        AppConfig {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a source file.
    pub fn add_source(
        &mut self,
        filename: impl Into<String>,
        content: impl Into<String>,
    ) -> &mut Self {
        self.sources.push((filename.into(), content.into()));
        self
    }

    /// Adds a table with its Warp annotation.
    pub fn add_table(
        &mut self,
        create_sql: impl Into<String>,
        annotation: TableAnnotation,
    ) -> &mut Self {
        self.tables.push((create_sql.into(), annotation));
        self
    }

    /// Adds an explicit route.
    pub fn route(&mut self, path: impl Into<String>, script: impl Into<String>) -> &mut Self {
        self.router.route(path.into(), script.into());
        self
    }

    /// Adds a seed SQL statement executed at install time.
    pub fn seed(&mut self, sql: impl Into<String>) -> &mut Self {
        self.seed_sql.push(sql.into());
        self
    }

    /// Total annotation lines contributed by this application's tables
    /// (reported alongside §8.1).
    pub fn annotation_lines(&self) -> usize {
        self.tables.iter().map(|(_, a)| a.annotation_lines()).sum()
    }
}

/// Server-level configuration: the application plus (optionally) the
/// storage backend its state is persisted to.
///
/// With no backend, [`crate::WarpServer::open`] behaves exactly like
/// [`crate::WarpServer::new`]; with one, every handled request, uploaded
/// client log, repair and GC run is appended to a durable action log, and
/// `open` recovers whatever state the backend already holds.
#[derive(Debug)]
pub struct ServerConfig {
    /// The application to install.
    pub app: AppConfig,
    /// Where to persist state; `None` keeps the server in-memory.
    pub backend: Option<Box<dyn StorageBackend>>,
    /// Log segment size and checkpoint cadence.
    pub store_options: StoreOptions,
}

impl ServerConfig {
    /// An in-memory server configuration for the given application.
    pub fn new(app: AppConfig) -> Self {
        ServerConfig {
            app,
            backend: None,
            store_options: StoreOptions::default(),
        }
    }

    /// Persists the server to the given storage backend, builder style.
    pub fn with_backend(mut self, backend: Box<dyn StorageBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Overrides the store tunables, builder style.
    pub fn with_store_options(mut self, options: StoreOptions) -> Self {
        self.store_options = options;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let mut c = AppConfig::new("wiki");
        c.add_source("index.wasl", "echo(1);")
            .add_table(
                "CREATE TABLE page (page_id INTEGER PRIMARY KEY)",
                TableAnnotation::new().row_id("page_id"),
            )
            .route("/", "index.wasl")
            .seed("INSERT INTO page (page_id) VALUES (1)");
        assert_eq!(c.sources.len(), 1);
        assert_eq!(c.tables.len(), 1);
        assert_eq!(c.seed_sql.len(), 1);
        assert_eq!(c.annotation_lines(), 1);
        assert_eq!(c.router.resolve("/"), Some("index.wasl".to_string()));
        assert_eq!(
            c.router.resolve("/index.wasl"),
            Some("index.wasl".to_string())
        );
    }
}
