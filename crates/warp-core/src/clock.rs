//! The server's logical clock.
//!
//! Every action Warp logs — HTTP requests, database queries, checkpoints —
//! is stamped from a single monotonically increasing logical clock. Using a
//! logical clock (rather than wall-clock time) keeps workloads, logs and
//! repairs fully deterministic, which the evaluation harness relies on.

use serde::{Deserialize, Serialize};

/// A monotonically increasing logical clock.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogicalClock {
    now: i64,
}

impl LogicalClock {
    /// Creates a clock starting at zero.
    pub fn new() -> Self {
        LogicalClock { now: 0 }
    }

    /// Returns the current time without advancing.
    pub fn now(&self) -> i64 {
        self.now
    }

    /// Advances the clock and returns the new time.
    pub fn tick(&mut self) -> i64 {
        self.now += 1;
        self.now
    }

    /// Advances the clock by `n` ticks and returns the new time.
    pub fn advance(&mut self, n: i64) -> i64 {
        self.now += n.max(0);
        self.now
    }

    /// Fast-forwards the clock to `to` if that is ahead of the current
    /// time; never moves backwards. Recovery uses this to restore the
    /// clock recorded by a checkpoint or log record.
    pub fn fast_forward(&mut self, to: i64) {
        if to > self.now {
            self.now = to;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic() {
        let mut c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn advance_ignores_negative() {
        let mut c = LogicalClock::new();
        c.advance(10);
        assert_eq!(c.now(), 10);
        c.advance(-5);
        assert_eq!(c.now(), 10);
    }
}
