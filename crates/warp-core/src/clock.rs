//! The server's logical clock.
//!
//! Every action Warp logs — HTTP requests, database queries, checkpoints —
//! is stamped from a single monotonically increasing logical clock. Using a
//! logical clock (rather than wall-clock time) keeps workloads, logs and
//! repairs fully deterministic, which the evaluation harness relies on.
//!
//! The clock is a shared atomic cell: cloning a `LogicalClock` yields a
//! handle onto the *same* timeline, so engine shards can stamp queries
//! concurrently while the server keeps one global notion of "now". All
//! methods take `&self`; `tick` is a single `fetch_add`.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A monotonically increasing logical clock. Clones share the underlying
/// counter.
#[derive(Debug, Clone, Default)]
pub struct LogicalClock {
    now: Arc<AtomicI64>,
}

impl LogicalClock {
    /// Creates a clock starting at zero.
    pub fn new() -> Self {
        LogicalClock {
            now: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Returns the current time without advancing.
    pub fn now(&self) -> i64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Advances the clock and returns the new time.
    pub fn tick(&self) -> i64 {
        self.now.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Advances the clock by `n` ticks and returns the new time.
    pub fn advance(&self, n: i64) -> i64 {
        let n = n.max(0);
        self.now.fetch_add(n, Ordering::SeqCst) + n
    }

    /// Fast-forwards the clock to `to` if that is ahead of the current
    /// time; never moves backwards. Recovery uses this to restore the
    /// clock recorded by a checkpoint or log record.
    pub fn fast_forward(&self, to: i64) {
        self.now.fetch_max(to, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic() {
        let c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn advance_ignores_negative() {
        let c = LogicalClock::new();
        c.advance(10);
        assert_eq!(c.now(), 10);
        c.advance(-5);
        assert_eq!(c.now(), 10);
    }

    #[test]
    fn clones_share_the_timeline() {
        let a = LogicalClock::new();
        let b = a.clone();
        a.tick();
        b.tick();
        assert_eq!(a.now(), 2);
        assert_eq!(b.now(), 2);
        b.fast_forward(50);
        assert_eq!(a.now(), 50);
        a.fast_forward(10);
        assert_eq!(b.now(), 50);
    }
}
