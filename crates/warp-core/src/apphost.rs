//! The application repair manager's interposition layer (paper §3).
//!
//! Application code (WASL, the PHP analog) never touches the database, the
//! HTTP layer, the clock or randomness directly: every such call goes
//! through the host implemented here. During normal execution the host logs
//! the dependencies and non-determinism the repair controller will later
//! need; during repair it replays recorded non-determinism and routes
//! database queries through the repair session (time-travel re-execution).

use crate::clock::LogicalClock;
use crate::history::{ActionRecord, NondetRecord, QueryRecord};
use crate::sourcefs::SourceStore;
use std::collections::BTreeMap;
use std::sync::Mutex;
use warp_http::{generate_session_id, HttpRequest, HttpResponse};
use warp_script::{Host, Interpreter, ScriptError, ScriptResult, Value as SVal};
use warp_sql::Value as DVal;
use warp_ttdb::{RepairSession, TimeTravelDb};

/// How an application run reaches the time-travel database.
///
/// The classic serving path and all repair paths own the database outright
/// (`Exclusive`). Engine shards executing non-conflicting requests in
/// parallel share one database behind a mutex (`Shared`) and hold the lock
/// only for the duration of each individual query — script interpretation,
/// the dominant cost, runs outside the lock.
pub enum DbAccess<'a> {
    /// Sole ownership of the database for the whole run.
    Exclusive(&'a mut TimeTravelDb),
    /// Per-query locking against a database shared between engine shards.
    Shared(&'a Mutex<TimeTravelDb>),
}

impl DbAccess<'_> {
    /// Runs `f` with exclusive access to the database, acquiring the shard
    /// lock around the call if the database is shared.
    pub fn with<R>(&mut self, f: impl FnOnce(&mut TimeTravelDb) -> R) -> R {
        match self {
            DbAccess::Exclusive(db) => f(db),
            DbAccess::Shared(shared) => f(&mut shared.lock().expect("shard db lock poisoned")),
        }
    }
}

/// How the application run interacts with the database and non-determinism.
pub enum ExecMode<'a> {
    /// Normal execution: queries run in the current generation at fresh
    /// clock ticks; non-determinism is generated and recorded.
    Normal {
        /// The server's logical clock (a shared handle; ticking is atomic).
        clock: &'a LogicalClock,
        /// Deterministic randomness counter.
        rng_counter: &'a mut u64,
        /// Session-ID counter.
        session_counter: &'a mut u64,
    },
    /// Re-execution during repair: queries run in the repair generation at
    /// their original times; non-determinism is replayed from the original
    /// action record when possible.
    Repair {
        /// The repair session (tracks modified partitions, does two-phase
        /// write re-execution).
        session: &'a mut RepairSession,
        /// The original action, when re-executing a recorded run (None for
        /// brand-new runs discovered during repair).
        original: Option<&'a ActionRecord>,
    },
}

/// Everything needed to run one application request.
pub struct AppRunContext<'a> {
    /// The HTTP request being handled.
    pub request: &'a HttpRequest,
    /// The entry script resolved by the router.
    pub entry_script: String,
    /// The versioned source tree.
    pub sources: &'a SourceStore,
    /// The logical time of this run.
    pub action_time: i64,
    /// The time-travel database (exclusive, or shared between shards).
    pub db: DbAccess<'a>,
    /// Normal vs repair execution.
    pub mode: ExecMode<'a>,
}

/// The outcome of one application run.
#[derive(Debug, Clone)]
pub struct AppRunResult {
    /// The HTTP response produced.
    pub response: HttpResponse,
    /// Source files loaded (entry script plus includes).
    pub loaded_files: Vec<String>,
    /// Database queries issued, in order.
    pub queries: Vec<QueryRecord>,
    /// Non-deterministic calls, in order.
    pub nondet: Vec<NondetRecord>,
    /// For repair runs: which of the original action's queries were matched
    /// (re-executed) by this run. Unmatched original *writes* are the ones
    /// the repair controller must roll back.
    pub used_original_queries: Vec<bool>,
    /// A fatal script error, if the run failed.
    pub script_error: Option<String>,
    /// Number of queries this run re-executed through the repair session.
    pub queries_reexecuted: usize,
}

/// Runs one application request to completion.
pub fn run_application(ctx: AppRunContext<'_>) -> AppRunResult {
    let entry = ctx.entry_script.clone();
    let original_len = match &ctx.mode {
        ExecMode::Repair {
            original: Some(o), ..
        } => o.queries.len(),
        _ => 0,
    };
    let mut host = AppHost {
        request: ctx.request,
        sources: ctx.sources,
        action_time: ctx.action_time,
        db: ctx.db,
        mode: ctx.mode,
        output: String::new(),
        headers: Vec::new(),
        set_cookies: Vec::new(),
        status: 200,
        redirect: None,
        loaded_files: vec![entry.clone()],
        queries: Vec::new(),
        nondet: Vec::new(),
        nondet_cursor: BTreeMap::new(),
        used_original_queries: vec![false; original_len],
        queries_reexecuted: 0,
    };
    let source = match host.source_for(&entry) {
        Some(s) => s,
        None => {
            return AppRunResult {
                response: HttpResponse::not_found(format!("no such script: {entry}")),
                loaded_files: vec![entry],
                queries: Vec::new(),
                nondet: Vec::new(),
                used_original_queries: vec![false; original_len],
                script_error: None,
                queries_reexecuted: 0,
            }
        }
    };
    let mut interpreter = Interpreter::new();
    let run = interpreter.eval_program(&source, &mut host);
    let script_error = run.err().map(|e| e.to_string());
    let mut response = match (&script_error, host.redirect.clone()) {
        (Some(err), _) => HttpResponse::server_error(format!("application error: {err}")),
        (None, Some(location)) => HttpResponse::redirect(location),
        (None, None) => {
            let mut r = HttpResponse::ok(host.output.clone());
            r.status = host.status;
            r
        }
    };
    for (name, value) in &host.headers {
        response.headers.insert(name.clone(), value.clone());
    }
    response
        .set_cookies
        .extend(host.set_cookies.iter().cloned());
    AppRunResult {
        response,
        loaded_files: host.loaded_files,
        queries: host.queries,
        nondet: host.nondet,
        used_original_queries: host.used_original_queries,
        script_error,
        queries_reexecuted: host.queries_reexecuted,
    }
}

struct AppHost<'a> {
    request: &'a HttpRequest,
    sources: &'a SourceStore,
    action_time: i64,
    db: DbAccess<'a>,
    mode: ExecMode<'a>,
    output: String,
    headers: Vec<(String, String)>,
    set_cookies: Vec<String>,
    status: u16,
    redirect: Option<String>,
    loaded_files: Vec<String>,
    queries: Vec<QueryRecord>,
    nondet: Vec<NondetRecord>,
    /// Per-function replay cursor into the original action's nondet log.
    nondet_cursor: BTreeMap<String, usize>,
    used_original_queries: Vec<bool>,
    queries_reexecuted: usize,
}

impl AppHost<'_> {
    fn source_for(&self, filename: &str) -> Option<String> {
        match self.mode {
            ExecMode::Normal { .. } => self
                .sources
                .content_for_normal_execution(filename, self.action_time),
            ExecMode::Repair { .. } => self.sources.content_for_repair(filename, self.action_time),
        }
    }

    fn record_nondet(&mut self, func: &str, args: &[SVal], result: SVal) -> SVal {
        self.nondet.push(NondetRecord {
            func: func.to_string(),
            args: args.to_vec(),
            result: result.clone(),
        });
        result
    }

    /// During repair, returns the next recorded return value for `func` if
    /// the original run called it (in-order matching per call site family,
    /// paper §3.3); otherwise None and the caller generates a fresh value.
    fn replay_nondet(&mut self, func: &str) -> Option<SVal> {
        if let ExecMode::Repair {
            original: Some(original),
            ..
        } = &self.mode
        {
            let cursor = self.nondet_cursor.entry(func.to_string()).or_insert(0);
            let remaining = original
                .nondet
                .iter()
                .filter(|n| n.func == func)
                .nth(*cursor);
            if let Some(n) = remaining {
                *cursor += 1;
                return Some(n.result.clone());
            }
        }
        None
    }

    fn handle_nondet(&mut self, func: &str, args: &[SVal]) -> SVal {
        if let Some(v) = self.replay_nondet(func) {
            self.nondet.push(NondetRecord {
                func: func.to_string(),
                args: args.to_vec(),
                result: v.clone(),
            });
            return v;
        }
        let fresh = match &mut self.mode {
            ExecMode::Normal {
                clock,
                rng_counter,
                session_counter,
            } => match func {
                "time" => SVal::Int(clock.now()),
                "rand" => {
                    **rng_counter += 1;
                    SVal::Int(mix(**rng_counter) as i64 & 0x7fff_ffff)
                }
                "session_start" => {
                    **session_counter += 1;
                    SVal::str(generate_session_id(**session_counter))
                }
                _ => SVal::Null,
            },
            ExecMode::Repair { session, .. } => match func {
                // Fresh non-determinism during repair is derived from the
                // repair generation and action time so repair itself stays
                // deterministic.
                "time" => SVal::Int(self.action_time),
                "rand" => SVal::Int(
                    mix(self.action_time as u64 ^ session.generation as u64) as i64 & 0x7fff_ffff,
                ),
                "session_start" => SVal::str(generate_session_id(
                    (self.action_time as u64) ^ 0xdead_beef ^ session.generation as u64,
                )),
                _ => SVal::Null,
            },
        };
        self.record_nondet(func, args, fresh)
    }

    fn handle_query(&mut self, sql: &str) -> ScriptResult<SVal> {
        let stmt = warp_sql::parse(sql)
            .map_err(|e| ScriptError::Host(format!("SQL error in `{sql}`: {e}")))?;
        let is_write = stmt.is_write();
        let execution = match &mut self.mode {
            ExecMode::Normal { clock, .. } => {
                let time = clock.tick();
                self.db
                    .with(|db| {
                        let gen = db.current_generation();
                        db.execute_stmt_logged(&stmt, time, gen)
                    })
                    .map(|out| (out, time))
            }
            ExecMode::Repair { session, original } => {
                // Match this query against the original run's queries to find
                // its original execution time and (for writes) the rows it
                // originally modified.
                let matched = match_original_query(
                    original.as_deref(),
                    &self.used_original_queries,
                    sql,
                    &stmt,
                );
                let (time, original_rows) = match matched {
                    Some(idx) => {
                        self.used_original_queries[idx] = true;
                        let q = &original.as_ref().expect("matched implies original").queries[idx];
                        (q.time, q.written_row_ids.clone())
                    }
                    None => (self.action_time, Vec::new()),
                };
                self.queries_reexecuted += 1;
                let result = if is_write {
                    if original_rows.is_empty() && matched.is_none() {
                        self.db
                            .with(|db| session.execute_new_write(db, &stmt, time))
                    } else {
                        self.db
                            .with(|db| session.reexecute_write(db, &stmt, time, &original_rows))
                    }
                } else {
                    self.db.with(|db| session.reexecute_read(db, &stmt, time))
                };
                result.map(|out| (out, time))
            }
        };
        let (out, time) =
            execution.map_err(|e| ScriptError::Host(format!("database error: {e}")))?;
        let fingerprint = out.result.fingerprint();
        self.queries.push(QueryRecord {
            sql: sql.to_string(),
            time,
            result_fingerprint: fingerprint,
            is_write,
            written_row_ids: out.dependency.written_row_ids.clone(),
            dependency: out.dependency.clone(),
        });
        if is_write {
            Ok(SVal::Int(out.result.affected as i64))
        } else {
            let mut rows = Vec::with_capacity(out.result.rows.len());
            for row in &out.result.rows {
                let mut map = std::collections::BTreeMap::new();
                for (col, val) in out.result.columns.iter().zip(row) {
                    map.insert(col.clone(), sql_to_script(val));
                }
                rows.push(SVal::Map(map));
            }
            Ok(SVal::Array(rows))
        }
    }
}

/// Finds the original query this re-executed query corresponds to.
///
/// Exact SQL text matches are preferred; otherwise a write is matched to the
/// first unused original write of the same kind against the same table (its
/// text may legitimately differ — e.g. the patched application sanitised the
/// content it stores).
fn match_original_query(
    original: Option<&ActionRecord>,
    used: &[bool],
    sql: &str,
    stmt: &warp_sql::Statement,
) -> Option<usize> {
    let original = original?;
    // Pass 1: exact text match.
    for (i, q) in original.queries.iter().enumerate() {
        if !used[i] && q.sql == sql {
            return Some(i);
        }
    }
    // Pass 2 (writes only): same statement kind against the same table.
    if stmt.is_write() {
        let kind = std::mem::discriminant(stmt);
        let table = stmt.table_name().unwrap_or_default().to_ascii_lowercase();
        for (i, q) in original.queries.iter().enumerate() {
            if used[i] || !q.is_write {
                continue;
            }
            if let Ok(orig_stmt) = warp_sql::parse(&q.sql) {
                if std::mem::discriminant(&orig_stmt) == kind
                    && orig_stmt
                        .table_name()
                        .unwrap_or_default()
                        .to_ascii_lowercase()
                        == table
                {
                    return Some(i);
                }
            }
        }
    }
    None
}

impl Host for AppHost<'_> {
    fn call_host(&mut self, name: &str, args: &[SVal]) -> Option<ScriptResult<SVal>> {
        match name {
            "echo" | "print" => {
                for a in args {
                    self.output.push_str(&a.to_display_string());
                }
                Some(Ok(SVal::Null))
            }
            "param" => {
                let key = args
                    .first()
                    .map(|v| v.to_display_string())
                    .unwrap_or_default();
                Some(Ok(self
                    .request
                    .param(&key)
                    .map(SVal::str)
                    .unwrap_or(SVal::Null)))
            }
            "has_param" => {
                let key = args
                    .first()
                    .map(|v| v.to_display_string())
                    .unwrap_or_default();
                Some(Ok(SVal::Bool(self.request.param(&key).is_some())))
            }
            "request_method" => Some(Ok(SVal::str(self.request.method.as_str()))),
            "request_path" => Some(Ok(SVal::str(self.request.path.clone()))),
            "cookie" => {
                let key = args
                    .first()
                    .map(|v| v.to_display_string())
                    .unwrap_or_default();
                Some(Ok(self
                    .request
                    .cookies
                    .get(&key)
                    .map(SVal::str)
                    .unwrap_or(SVal::Null)))
            }
            "set_cookie" => {
                let key = args
                    .first()
                    .map(|v| v.to_display_string())
                    .unwrap_or_default();
                let value = args
                    .get(1)
                    .map(|v| v.to_display_string())
                    .unwrap_or_default();
                self.set_cookies.push(format!("{key}={value}"));
                Some(Ok(SVal::Null))
            }
            "clear_cookie" => {
                let key = args
                    .first()
                    .map(|v| v.to_display_string())
                    .unwrap_or_default();
                self.set_cookies.push(format!("{key}="));
                Some(Ok(SVal::Null))
            }
            "header" => {
                let key = args
                    .first()
                    .map(|v| v.to_display_string())
                    .unwrap_or_default();
                let value = args
                    .get(1)
                    .map(|v| v.to_display_string())
                    .unwrap_or_default();
                self.headers.push((key, value));
                Some(Ok(SVal::Null))
            }
            "redirect" => {
                let url = args
                    .first()
                    .map(|v| v.to_display_string())
                    .unwrap_or_default();
                self.redirect = Some(url);
                Some(Ok(SVal::Null))
            }
            "http_status" => {
                if let Some(code) = args.first().and_then(|v| v.as_int()) {
                    self.status = code as u16;
                }
                Some(Ok(SVal::Null))
            }
            "db_query" => {
                let sql = args
                    .first()
                    .map(|v| v.to_display_string())
                    .unwrap_or_default();
                Some(self.handle_query(&sql))
            }
            "time" | "rand" | "session_start" => Some(Ok(self.handle_nondet(name, args))),
            _ => None,
        }
    }

    fn load_include(&mut self, filename: &str) -> Option<String> {
        let content = self.source_for(filename)?;
        if !self.loaded_files.iter().any(|f| f == filename) {
            self.loaded_files.push(filename.to_string());
        }
        Some(content)
    }
}

fn sql_to_script(v: &DVal) -> SVal {
    match v {
        DVal::Null => SVal::Null,
        DVal::Bool(b) => SVal::Bool(*b),
        DVal::Int(i) => SVal::Int(*i),
        DVal::Float(f) => SVal::Float(*f),
        DVal::Text(s) => SVal::Str(s.clone()),
    }
}

/// SplitMix64 step, used for deterministic "randomness".
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_ttdb::TableAnnotation;

    fn test_db() -> TimeTravelDb {
        let mut db = TimeTravelDb::new();
        db.create_table(
            "CREATE TABLE page (page_id INTEGER PRIMARY KEY, title TEXT, body TEXT)",
            TableAnnotation::new()
                .row_id("page_id")
                .partitions(["title"]),
        )
        .unwrap();
        db
    }

    fn normal_run(
        db: &mut TimeTravelDb,
        clock: &LogicalClock,
        sources: &SourceStore,
        entry: &str,
        request: &HttpRequest,
    ) -> AppRunResult {
        let time = clock.tick();
        let mut rng = 0u64;
        let mut sess = 0u64;
        run_application(AppRunContext {
            request,
            entry_script: entry.to_string(),
            sources,
            action_time: time,
            db: DbAccess::Exclusive(db),
            mode: ExecMode::Normal {
                clock,
                rng_counter: &mut rng,
                session_counter: &mut sess,
            },
        })
    }

    #[test]
    fn echo_params_and_headers() {
        let mut db = test_db();
        let clock = LogicalClock::new();
        let mut sources = SourceStore::new();
        sources.install(
            "index.wasl",
            "header(\"X-App\", \"wiki\"); set_cookie(\"seen\", \"1\"); \
             echo(\"<p>\" . param(\"q\") . \"</p>\");",
        );
        let req = HttpRequest::get("/index.wasl?q=hello");
        let out = normal_run(&mut db, &clock, &sources, "index.wasl", &req);
        assert_eq!(out.response.status, 200);
        assert_eq!(out.response.body, "<p>hello</p>");
        assert_eq!(out.response.header("X-App"), Some("wiki"));
        assert_eq!(out.response.set_cookies, vec!["seen=1".to_string()]);
        assert!(out.script_error.is_none());
    }

    #[test]
    fn db_queries_are_recorded_with_dependencies() {
        let mut db = test_db();
        let clock = LogicalClock::new();
        let mut sources = SourceStore::new();
        sources.install(
            "edit.wasl",
            "db_query(\"INSERT INTO page (page_id, title, body) VALUES (1, 'Main', 'hi')\"); \
             let rows = db_query(\"SELECT body FROM page WHERE title = 'Main'\"); \
             echo(rows[0][\"body\"]);",
        );
        let req = HttpRequest::get("/edit.wasl");
        let out = normal_run(&mut db, &clock, &sources, "edit.wasl", &req);
        assert_eq!(out.response.body, "hi");
        assert_eq!(out.queries.len(), 2);
        assert!(out.queries[0].is_write);
        assert!(!out.queries[1].is_write);
        assert_eq!(
            out.queries[0].written_row_ids,
            vec![warp_sql::Value::Int(1)]
        );
        assert!(out.queries[0].time < out.queries[1].time);
    }

    #[test]
    fn includes_are_tracked_as_loaded_files() {
        let mut db = test_db();
        let clock = LogicalClock::new();
        let mut sources = SourceStore::new();
        sources.install("common.wasl", "fn wrap(x) { return \"[\" . x . \"]\"; }");
        sources.install("view.wasl", "include \"common.wasl\"; echo(wrap(\"ok\"));");
        let req = HttpRequest::get("/view.wasl");
        let out = normal_run(&mut db, &clock, &sources, "view.wasl", &req);
        assert_eq!(out.response.body, "[ok]");
        assert_eq!(
            out.loaded_files,
            vec!["view.wasl".to_string(), "common.wasl".to_string()]
        );
    }

    #[test]
    fn missing_script_is_404_and_script_error_is_500() {
        let mut db = test_db();
        let clock = LogicalClock::new();
        let sources = SourceStore::new();
        let req = HttpRequest::get("/nope.wasl");
        let out = normal_run(&mut db, &clock, &sources, "nope.wasl", &req);
        assert_eq!(out.response.status, 404);
        let mut sources = SourceStore::new();
        sources.install("bad.wasl", "this is not valid wasl");
        let out = normal_run(&mut db, &clock, &sources, "bad.wasl", &req);
        assert_eq!(out.response.status, 500);
        assert!(out.script_error.is_some());
    }

    #[test]
    fn nondeterminism_is_recorded_and_replayed() {
        let mut db = test_db();
        let clock = LogicalClock::new();
        let mut sources = SourceStore::new();
        sources.install(
            "r.wasl",
            "echo(rand() . \",\" . rand() . \",\" . session_start());",
        );
        let req = HttpRequest::get("/r.wasl");
        let original = normal_run(&mut db, &clock, &sources, "r.wasl", &req);
        assert_eq!(original.nondet.len(), 3);
        // Build an action record and re-execute it in repair mode; the output
        // must be identical because the recorded values are replayed.
        let action = ActionRecord {
            id: 0,
            time: 1,
            request: req.clone(),
            response: original.response.clone(),
            client: None,
            entry_script: "r.wasl".into(),
            loaded_files: original.loaded_files.clone(),
            queries: original.queries.clone(),
            nondet: original.nondet.clone(),
            cancelled: false,
        };
        let mut session = RepairSession::begin(&mut db);
        let repaired = run_application(AppRunContext {
            request: &req,
            entry_script: "r.wasl".to_string(),
            sources: &sources,
            action_time: 1,
            db: DbAccess::Exclusive(&mut db),
            mode: ExecMode::Repair {
                session: &mut session,
                original: Some(&action),
            },
        });
        assert_eq!(repaired.response.body, original.response.body);
    }

    #[test]
    fn redirect_and_status() {
        let mut db = test_db();
        let clock = LogicalClock::new();
        let mut sources = SourceStore::new();
        sources.install("go.wasl", "redirect(\"/index.wasl\");");
        sources.install("forbidden.wasl", "http_status(403); echo(\"no\");");
        let req = HttpRequest::get("/go.wasl");
        let out = normal_run(&mut db, &clock, &sources, "go.wasl", &req);
        assert_eq!(out.response.status, 302);
        assert_eq!(out.response.redirect_location(), Some("/index.wasl"));
        let out = normal_run(&mut db, &clock, &sources, "forbidden.wasl", &req);
        assert_eq!(out.response.status, 403);
    }

    #[test]
    fn repair_write_matching_rolls_back_original_rows() {
        let mut db = test_db();
        let clock = LogicalClock::new();
        let mut sources = SourceStore::new();
        // The vulnerable script stores the raw parameter; the patched one
        // sanitises it.
        sources.install(
            "save.wasl",
            "db_query(\"UPDATE page SET body = '\" . sql_escape(param(\"body\")) . \"' WHERE title = 'Main'\"); echo(\"saved\");",
        );
        db.execute_logged(
            "INSERT INTO page (page_id, title, body) VALUES (1, 'Main', 'clean')",
            clock.tick(),
        )
        .unwrap();
        let req = HttpRequest::post("/save.wasl", [("body", "<script>evil</script>")]);
        let original = normal_run(&mut db, &clock, &sources, "save.wasl", &req);
        assert!(original.queries[0].is_write);
        // Retroactively "patch" by changing what gets stored, then re-execute.
        sources.update(
            "save.wasl",
            "db_query(\"UPDATE page SET body = '\" . sql_escape(htmlspecialchars(param(\"body\"))) . \"' WHERE title = 'Main'\"); echo(\"saved\");",
            0,
        );
        let action = ActionRecord {
            id: 0,
            time: original.queries[0].time - 1,
            request: req.clone(),
            response: original.response.clone(),
            client: None,
            entry_script: "save.wasl".into(),
            loaded_files: original.loaded_files.clone(),
            queries: original.queries.clone(),
            nondet: original.nondet.clone(),
            cancelled: false,
        };
        let mut session = RepairSession::begin(&mut db);
        let repaired = run_application(AppRunContext {
            request: &req,
            entry_script: "save.wasl".to_string(),
            sources: &sources,
            action_time: action.time,
            db: DbAccess::Exclusive(&mut db),
            mode: ExecMode::Repair {
                session: &mut session,
                original: Some(&action),
            },
        });
        // The differently-texted UPDATE still matched the original write.
        assert_eq!(repaired.used_original_queries, vec![true]);
        session.finalize(&mut db);
        let body = db
            .execute_logged("SELECT body FROM page WHERE title = 'Main'", 1000)
            .unwrap();
        assert!(body.result.rows[0][0]
            .as_display_string()
            .contains("&lt;script&gt;"));
    }
}
