//! Conflicts queued for users during repair (paper §5.4).

use serde::{Deserialize, Serialize};
use warp_browser::ConflictReason;

/// Why a conflict was raised.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConflictKind {
    /// DOM-level replay of the user's input failed (element missing, text
    /// merge impossible, framing denied, or no client log to replay).
    BrowserReplay(ConflictReason),
    /// The user's action was cancelled because it is no longer permitted in
    /// the repaired state (e.g. an edit made with privileges that have been
    /// revoked retroactively).
    ActionCancelled,
    /// An application run failed outright during re-execution.
    ReexecutionFailed(String),
}

/// A conflict queued for a user to resolve the next time they log in.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conflict {
    /// The affected client (browser).
    pub client_id: String,
    /// The page visit on which the conflict arose.
    pub visit_id: u64,
    /// The URL of that page visit.
    pub url: String,
    /// Why the conflict arose.
    pub kind: ConflictKind,
    /// True once the user has resolved the conflict.
    pub resolved: bool,
    /// The repair partition (dependency group index) whose re-execution
    /// raised the conflict, when the partitioned engine ran. `None` for the
    /// sequential engine.
    pub partition: Option<usize>,
}

impl Conflict {
    /// Creates an unresolved conflict.
    pub fn new(client_id: &str, visit_id: u64, url: &str, kind: ConflictKind) -> Self {
        Conflict {
            client_id: client_id.to_string(),
            visit_id,
            url: url.to_string(),
            kind,
            resolved: false,
            partition: None,
        }
    }

    /// Attributes the conflict to a repair partition (used by the
    /// partitioned engine when merging per-partition outcomes).
    pub fn with_partition(mut self, partition: usize) -> Self {
        self.partition = Some(partition);
        self
    }
}

/// The server-side queue of pending conflicts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConflictQueue {
    conflicts: Vec<Conflict>,
}

impl ConflictQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ConflictQueue::default()
    }

    /// Adds a conflict.
    pub fn push(&mut self, conflict: Conflict) {
        self.conflicts.push(conflict);
    }

    /// All conflicts (resolved and pending).
    pub fn all(&self) -> &[Conflict] {
        &self.conflicts
    }

    /// Pending conflicts for one client — the set the conflict-resolution
    /// page shows the user when they next log in.
    pub fn pending_for(&self, client_id: &str) -> Vec<&Conflict> {
        self.conflicts
            .iter()
            .filter(|c| c.client_id == client_id && !c.resolved)
            .collect()
    }

    /// Number of distinct clients with at least one pending conflict (the
    /// "users with conflicts" column of Table 3).
    pub fn clients_with_conflicts(&self) -> usize {
        let mut clients: Vec<&str> = self
            .conflicts
            .iter()
            .filter(|c| !c.resolved)
            .map(|c| c.client_id.as_str())
            .collect();
        clients.sort_unstable();
        clients.dedup();
        clients.len()
    }

    /// Marks every pending conflict of a client's visit as resolved (the
    /// prototype's "cancel this page visit" resolution).
    pub fn resolve(&mut self, client_id: &str, visit_id: u64) -> usize {
        let mut n = 0;
        for c in &mut self.conflicts {
            if c.client_id == client_id && c.visit_id == visit_id && !c.resolved {
                c.resolved = true;
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_tracks_pending_per_client() {
        let mut q = ConflictQueue::new();
        q.push(Conflict::new(
            "alice",
            3,
            "/edit.wasl",
            ConflictKind::ActionCancelled,
        ));
        q.push(Conflict::new(
            "bob",
            1,
            "/view.wasl",
            ConflictKind::BrowserReplay(ConflictReason::NoClientLog),
        ));
        q.push(Conflict::new(
            "alice",
            4,
            "/edit.wasl",
            ConflictKind::ActionCancelled,
        ));
        assert_eq!(q.pending_for("alice").len(), 2);
        assert_eq!(q.pending_for("bob").len(), 1);
        assert_eq!(q.clients_with_conflicts(), 2);
        assert_eq!(q.resolve("alice", 3), 1);
        assert_eq!(q.pending_for("alice").len(), 1);
        assert_eq!(q.clients_with_conflicts(), 2);
        q.resolve("alice", 4);
        q.resolve("bob", 1);
        assert_eq!(q.clients_with_conflicts(), 0);
        assert_eq!(q.all().len(), 3);
    }
}
