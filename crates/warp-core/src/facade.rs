//! The concurrent serving façade: a cloneable [`Warp`] handle in front of a
//! single-writer engine thread.
//!
//! The paper's premise is that Warp logs every action *while serving
//! production traffic* — so the public API must accept requests from many
//! threads without giving up the single-writer determinism the action
//! history depends on. The design here is a classic front-end/engine split:
//!
//! * [`Warp`] is a cheap, cloneable, `Send + Sync` handle. Any number of
//!   threads call [`Warp::serve`] concurrently; each call crosses into the
//!   engine over a channel and blocks until its response (and, depending on
//!   the [`Durability`] tier, its log record's durability) comes back.
//! * The **engine** is one background thread owning a [`WarpServer`]. It
//!   processes messages in arrival order, so the recorded history is a
//!   single serializable timeline no matter how many front-end threads are
//!   pushing requests.
//! * With [`WarpBuilder::engine_shards`], the engine adds a pool of **shard
//!   workers** and becomes a router: each request's partition footprint is
//!   predicted statically (see `crate::shard`), requests whose partitions
//!   all hash to one shard execute on that shard's worker concurrently with
//!   other shards, and everything else — imprecise footprints,
//!   cross-partition requests, repairs, administrative closures — escalates
//!   to the serialized **global lane**, which first drains every shard to a
//!   barrier. Action ids and times are still assigned at the single engine
//!   thread and results are recorded in dispatch order, so the history
//!   stays byte-for-byte the serializable timeline the classic engine
//!   produces.
//! * The **group-commit writer** (in `warp-store`) owns the durable log.
//!   Under [`Durability::Group`] and [`Durability::Immediate`], a response
//!   is released to the caller only after its log record is durable —
//!   *acknowledged implies recoverable* is an API contract, tested by the
//!   crash proptests. Under [`Durability::Relaxed`], responses return as
//!   soon as the action executes and durability trails behind.
//! * Repairs are first-class: [`Warp::repair`] returns a [`RepairHandle`]
//!   for status polling and outcome joining, and
//!   [`Warp::resume_pending_repair`] re-runs a crash-interrupted repair
//!   found during recovery.
//!
//! No async runtime: plain `std` threads and mpsc channels, matching the
//! repair scheduler's worker-pool style.

use crate::apphost::{run_application, AppRunContext, AppRunResult, DbAccess, ExecMode};
use crate::clock::LogicalClock;
use crate::config::{AppConfig, ServerConfig};
use crate::persist::RecoveryReport;
use crate::repair::{RepairOutcome, RepairRequest};
use crate::scheduler::RepairStrategy;
use crate::server::WarpServer;
use crate::shard::{classify, plan_entry, Route, RoutePlan, ShardSchema};
use crate::sourcefs::SourceStore;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;
use warp_browser::PageVisitRecord;
use warp_http::{HttpRequest, HttpResponse, Transport};
use warp_store::{BatchPolicy, StorageBackend, StoreOptions, StoreResult, WriterStats};
use warp_ttdb::{Generation, TimeTravelDb};

/// How durable an acknowledged request is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Every action's log record is written on its own and made durable
    /// before the response returns — the classic [`WarpServer`] behavior.
    Immediate,
    /// Group commit: records from concurrent requests are coalesced into
    /// batched log writes. A response still returns only after its record
    /// is durable, so nothing acknowledged can be lost to a crash; the
    /// batching only trades a bounded ack delay for fewer backend writes.
    Group {
        /// Flush once this many records are pending.
        max_batch: usize,
        /// Wait at most this long for more records before flushing.
        max_delay: Duration,
    },
    /// Responses return as soon as the action executes; the record is
    /// appended asynchronously. A crash may lose the un-flushed tail (the
    /// log is still prefix-consistent — recovery replays what survived).
    Relaxed,
}

impl Default for Durability {
    /// Group commit with the writer's default window
    /// ([`BatchPolicy::default`]), so the two crates cannot drift apart.
    fn default() -> Self {
        let policy = BatchPolicy::default();
        Durability::Group {
            max_batch: policy.max_batch,
            max_delay: policy.max_delay,
        }
    }
}

impl Durability {
    /// Short name used in benchmark reports.
    pub fn name(&self) -> &'static str {
        match self {
            Durability::Immediate => "immediate",
            Durability::Group { .. } => "group",
            Durability::Relaxed => "relaxed",
        }
    }

    /// The writer-thread batching policy this tier selects.
    fn batch_policy(&self) -> BatchPolicy {
        match self {
            Durability::Immediate => BatchPolicy::immediate(),
            Durability::Group {
                max_batch,
                max_delay,
            } => BatchPolicy {
                max_batch: (*max_batch).max(1),
                max_delay: *max_delay,
            },
            // Relaxed callers never wait, so give the writer the default
            // coalescing window.
            Durability::Relaxed => BatchPolicy::default(),
        }
    }

    /// True if a response may only be released after its record is durable.
    fn acks_after_durability(&self) -> bool {
        !matches!(self, Durability::Relaxed)
    }
}

/// Builder for a [`Warp`] deployment: the application, where to persist it,
/// how durable acknowledgements are, and how parallel repairs run.
///
/// ```
/// use warp_core::{AppConfig, Warp};
///
/// let mut app = AppConfig::new("hello");
/// app.add_source("index.wasl", "echo(\"hi\");");
/// let warp = Warp::builder().app(app).start();
/// ```
#[derive(Default)]
pub struct WarpBuilder {
    app: AppConfig,
    backend: Option<Box<dyn StorageBackend>>,
    store_options: StoreOptions,
    durability: Durability,
    repair_workers: usize,
    engine_shards: usize,
    background_maintenance: bool,
    shipper: Option<Box<dyn warp_store::ShipperHook>>,
}

impl std::fmt::Debug for WarpBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarpBuilder")
            .field("app", &self.app)
            .field("backend", &self.backend)
            .field("store_options", &self.store_options)
            .field("durability", &self.durability)
            .field("repair_workers", &self.repair_workers)
            .field("engine_shards", &self.engine_shards)
            .field("background_maintenance", &self.background_maintenance)
            .field("shipper", &self.shipper.as_ref().map(|_| "attached"))
            .finish()
    }
}

impl WarpBuilder {
    /// The application to install (schema, sources, routes, seeds).
    pub fn app(mut self, app: AppConfig) -> Self {
        self.app = app;
        self
    }

    /// Persist state to this storage backend. Without one the deployment is
    /// in-memory and every [`Durability`] tier acknowledges immediately.
    pub fn backend(mut self, backend: Box<dyn StorageBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Log segment size and checkpoint cadence.
    pub fn store_options(mut self, options: StoreOptions) -> Self {
        self.store_options = options;
        self
    }

    /// The acknowledgement durability tier (default: [`Durability::Group`]
    /// with a 64-record / 500 µs window).
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Worker threads for the partitioned parallel repair engine; `0` (the
    /// default) runs the classic sequential engine.
    pub fn repair_workers(mut self, workers: usize) -> Self {
        self.repair_workers = workers;
        self
    }

    /// Shard normal execution across `shards` engine worker threads.
    ///
    /// `0` or `1` (the default) keeps the classic single-threaded engine.
    /// With more shards, each request whose statically-predicted partition
    /// footprint lands on one shard executes on that shard's worker,
    /// concurrently with other shards; requests with imprecise or
    /// cross-shard footprints (and all repairs and administrative calls)
    /// escalate to a serialized global lane that first drains every shard
    /// to a barrier. The recorded action history is identical to the
    /// single-shard engine's, whatever the shard count:
    ///
    /// ```
    /// use warp_core::{AppConfig, Warp};
    /// use warp_http::HttpRequest;
    /// use warp_ttdb::TableAnnotation;
    ///
    /// fn app() -> AppConfig {
    ///     let mut app = AppConfig::new("notes");
    ///     app.add_table(
    ///         "CREATE TABLE note (note_id INTEGER, topic TEXT, body TEXT)",
    ///         TableAnnotation::new().row_id("note_id").partitions(["topic"]),
    ///     );
    ///     app.add_source(
    ///         "post.wasl",
    ///         "db_query(\"INSERT INTO note (note_id, topic, body) VALUES (\" \
    ///          . int(param(\"id\")) . \", '\" . sql_escape(param(\"topic\")) \
    ///          . \"', '\" . sql_escape(param(\"body\")) . \"')\"); echo(\"ok\");",
    ///     );
    ///     app
    /// }
    ///
    /// let sharded = Warp::builder().app(app()).engine_shards(4).start();
    /// let classic = Warp::builder().app(app()).start();
    /// for (warp, label) in [(&sharded, "sharded"), (&classic, "classic")] {
    ///     for i in 0..8 {
    ///         let target = format!("/post.wasl?id={i}&topic=t{}&body={label}-{i}", i % 3);
    ///         assert!(warp.serve(HttpRequest::get(&target)).body.contains("ok"));
    ///     }
    /// }
    /// // Same requests, same recorded history and database — shard count is
    /// // invisible in the outcome (bodies differ only by the label we wrote).
    /// let dump = |w: &Warp| w.with_server(|s| s.db.canonical_dump());
    /// assert_eq!(
    ///     dump(&sharded).replace("sharded", "x"),
    ///     dump(&classic).replace("classic", "x"),
    /// );
    /// assert_eq!(sharded.with_server(|s| s.history.len()), 8);
    /// ```
    pub fn engine_shards(mut self, shards: usize) -> Self {
        self.engine_shards = shards;
        self
    }

    /// Ship every durable log batch to a replica. The hook runs on the
    /// group-commit writer thread, after each batch commits and *before*
    /// its durability callbacks fire — by the time a client's ack
    /// releases, the batch is already on the wire. The `warp-replica`
    /// crate provides the hook (`LogShipper`) and the standby that
    /// consumes the stream; any [`warp_store::ShipperHook`] works.
    ///
    /// Shipping requires the group-commit writer, which every
    /// [`Durability`] tier of a persistent deployment uses; on an
    /// in-memory deployment (no [`WarpBuilder::backend`]) the hook is
    /// silently dropped along with the rest of the persistence machinery.
    pub fn ship_log_to(mut self, shipper: Box<dyn warp_store::ShipperHook>) -> Self {
        self.shipper = Some(shipper);
        self
    }

    /// Run checkpoint-chain compaction on a background maintenance worker:
    /// once the delta chain grows past
    /// [`StoreOptions::fold_after_deltas`] links, the worker folds it into
    /// a fresh base and retires the log segments the base subsumes — off
    /// the serve path, over its own handle onto the backend. Off by
    /// default; without it the engine folds inline by writing a full base
    /// checkpoint at the same threshold. No effect on in-memory
    /// deployments or backends that cannot hand out a second handle.
    pub fn background_maintenance(mut self, enabled: bool) -> Self {
        self.background_maintenance = enabled;
        self
    }

    /// The repair strategy the configured worker count selects.
    fn repair_strategy(&self) -> RepairStrategy {
        if self.repair_workers == 0 {
            RepairStrategy::Sequential
        } else {
            RepairStrategy::Partitioned {
                workers: self.repair_workers,
            }
        }
    }

    /// Opens the deployment: installs the app, recovers persisted state if
    /// a backend holds any, spawns the engine thread, and returns the
    /// handle plus what recovery found (including a pending interrupted
    /// repair — see [`Warp::resume_pending_repair`]).
    pub fn build(self) -> StoreResult<(Warp, RecoveryReport)> {
        let strategy = self.repair_strategy();
        let durability = self.durability;
        let mut config = ServerConfig::new(self.app).with_store_options(self.store_options);
        if let Some(backend) = self.backend {
            config = config.with_backend(backend);
        }
        let shards = self.engine_shards.max(1);
        let (mut server, report) = WarpServer::open(config)?;
        if self.background_maintenance {
            // Must start while the store is still inline: the worker needs
            // its own backend handle, which the group-commit writer thread
            // cannot hand out once it owns the store.
            server.start_maintenance();
        }
        match self.shipper {
            None => server.enable_group_commit(durability.batch_policy()),
            Some(hook) => server.enable_group_commit_with_shipper(durability.batch_policy(), hook),
        }
        let (tx, rx) = channel();
        // Liveness token: the sharded engine cannot rely on channel
        // disconnect to notice that every public handle is gone (its own
        // workers hold senders), so it watches this Arc instead.
        let alive = Arc::new(());
        let watch = Arc::downgrade(&alive);
        let worker_tx = tx.clone();
        let engine = std::thread::Builder::new()
            .name("warp-engine".into())
            .spawn(move || {
                if shards <= 1 {
                    drop(worker_tx);
                    engine_loop(server, durability, strategy, rx)
                } else {
                    sharded_engine_loop(server, durability, strategy, rx, worker_tx, shards, watch)
                }
            })
            .expect("spawning the warp engine thread");
        // The engine thread is detached: it exits when every handle is
        // dropped (channel disconnect / liveness token) or on `Warp::close`.
        drop(engine);
        Ok((
            Warp {
                tx,
                durable_acks: durability.acks_after_durability(),
                _alive: alive,
            },
            report,
        ))
    }

    /// [`WarpBuilder::build`] for in-memory deployments: no recovery report
    /// to inspect, and no store errors to handle.
    ///
    /// # Panics
    ///
    /// Panics if a backend was configured and opening it failed; use
    /// [`WarpBuilder::build`] to handle storage errors.
    pub fn start(self) -> Warp {
        let (warp, _) = self.build().unwrap_or_else(|e| panic!("Warp::build: {e}"));
        warp
    }
}

/// What the engine thread is asked to do.
enum EngineMsg {
    /// Serve one request; the response is released per the durability tier.
    Serve {
        request: HttpRequest,
        reply: Sender<HttpResponse>,
    },
    /// Run a closure against the engine's server (serialized like any other
    /// message). The closure sends its own result.
    With(Box<dyn FnOnce(&mut WarpServer) + Send>),
    /// Run a repair to completion.
    Repair {
        request: RepairRequest,
        strategy: Option<RepairStrategy>,
        state: Arc<AtomicU8>,
        outcome: Sender<RepairOutcome>,
    },
    /// Resume the crash-interrupted repair, if recovery found one.
    ResumeRepair {
        state: Arc<AtomicU8>,
        outcome: Sender<RepairOutcome>,
        accepted: Sender<bool>,
    },
    /// Stop the engine and hand the server back (writer flushed and folded
    /// back into the inline sink).
    Close { reply: Sender<Box<WarpServer>> },
    /// A shard worker finished executing a dispatched request (sharded
    /// engine only — workers send this back on the engine's own channel).
    ShardDone {
        seq: u64,
        time: i64,
        request: HttpRequest,
        entry: String,
        result: Box<AppRunResult>,
        reply: Sender<HttpResponse>,
    },
}

const STATUS_QUEUED: u8 = 0;
const STATUS_RUNNING: u8 = 1;
const STATUS_COMPLETED: u8 = 2;

/// Where a repair started through [`Warp::repair`] currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStatus {
    /// Waiting for the engine to pick it up (requests ahead of it in the
    /// queue are still being served).
    Queued,
    /// The engine is executing it.
    Running,
    /// Finished; the outcome is ready to join.
    Completed,
}

/// A first-class handle onto an in-flight repair: poll [`status`]
/// (non-blocking), peek the outcome with [`try_outcome`], or block on
/// [`join`].
///
/// [`status`]: RepairHandle::status
/// [`try_outcome`]: RepairHandle::try_outcome
/// [`join`]: RepairHandle::join
#[derive(Debug)]
pub struct RepairHandle {
    state: Arc<AtomicU8>,
    rx: Receiver<RepairOutcome>,
    received: Option<RepairOutcome>,
}

impl RepairHandle {
    fn new(state: Arc<AtomicU8>, rx: Receiver<RepairOutcome>) -> Self {
        RepairHandle {
            state,
            rx,
            received: None,
        }
    }

    /// Where the repair stands right now (non-blocking). If the engine
    /// stopped before running the repair, the status stays frozen at its
    /// last value — [`RepairHandle::try_outcome`] / [`RepairHandle::join`]
    /// are the calls that detect a dead engine.
    pub fn status(&self) -> RepairStatus {
        match self.state.load(Ordering::Acquire) {
            STATUS_QUEUED => RepairStatus::Queued,
            STATUS_RUNNING => RepairStatus::Running,
            _ => RepairStatus::Completed,
        }
    }

    /// The outcome, if the repair already completed (non-blocking).
    ///
    /// # Panics
    ///
    /// Panics if the engine stopped (e.g. [`Warp::close`] on another
    /// handle) before the repair completed — otherwise a polling loop
    /// would spin forever on a repair that can no longer finish.
    pub fn try_outcome(&mut self) -> Option<&RepairOutcome> {
        if self.received.is_none() {
            match self.rx.try_recv() {
                Ok(outcome) => self.received = Some(outcome),
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    panic!("warp engine stopped before the repair completed")
                }
            }
        }
        self.received.as_ref()
    }

    /// Blocks until the repair completes and returns its outcome.
    ///
    /// # Panics
    ///
    /// Panics if the engine stopped before the repair completed.
    pub fn join(mut self) -> RepairOutcome {
        match self.received.take() {
            Some(outcome) => outcome,
            None => self
                .rx
                .recv()
                .expect("warp engine stopped before the repair completed"),
        }
    }
}

/// The concurrent handle onto a Warp deployment. Clone it freely and call
/// [`Warp::serve`] from as many threads as you like; all requests funnel
/// into one engine thread, so the recorded action history stays a single
/// serializable timeline.
#[derive(Debug, Clone)]
pub struct Warp {
    tx: Sender<EngineMsg>,
    /// True when the configured tier releases acknowledgements only after
    /// durability (everything but [`Durability::Relaxed`]). Administrative
    /// writes routed through the handle honor the same contract.
    durable_acks: bool,
    /// Liveness token watched by the sharded engine (whose workers hold
    /// channel senders, masking disconnect): when the last public handle
    /// drops, the engine drains and exits.
    _alive: Arc<()>,
}

// Compile-time guarantee of the concurrency contract: the handle is Send +
// Sync + Clone, so `&Warp` can be shared across threads.
const _: () = {
    const fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
    assert_send_sync_clone::<Warp>()
};

impl Warp {
    /// Starts configuring a deployment.
    pub fn builder() -> WarpBuilder {
        WarpBuilder::default()
    }

    /// Serves one HTTP request. Callable concurrently from many threads;
    /// under [`Durability::Immediate`] and [`Durability::Group`] the call
    /// returns only once the action's log record is durable.
    ///
    /// After [`Warp::close`] (or an engine panic) this returns a 503
    /// response instead of panicking, so draining front-end threads shut
    /// down cleanly.
    pub fn serve(&self, request: HttpRequest) -> HttpResponse {
        let (reply, rx) = channel();
        if self.tx.send(EngineMsg::Serve { request, reply }).is_err() {
            return engine_stopped_response();
        }
        rx.recv().unwrap_or_else(|_| engine_stopped_response())
    }

    /// Runs `f` against the engine's [`WarpServer`] and returns its result.
    /// The closure runs on the engine thread, serialized with serving — use
    /// it for inspection (history, stats, dumps) and administrative calls
    /// that have no first-class wrapper yet.
    ///
    /// Durability note: this call returns when the closure returns. A
    /// closure that appends log records (an administrative write) gets no
    /// automatic durability barrier — call [`Warp::flush`] afterwards, or
    /// `server.flush_durable()` inside the closure, when you need the
    /// acked-implies-recoverable guarantee the serve path provides.
    ///
    /// # Panics
    ///
    /// Panics if the engine stopped.
    pub fn with_server<R, F>(&self, f: F) -> R
    where
        F: FnOnce(&mut WarpServer) -> R + Send + 'static,
        R: Send + 'static,
    {
        let (tx, rx) = channel();
        self.tx
            .send(EngineMsg::With(Box::new(move |server| {
                let _ = tx.send(f(server));
            })))
            .expect("warp engine stopped");
        rx.recv().expect("warp engine stopped")
    }

    /// Uploads client-side browser logs (the extension's out-of-band
    /// channel, §5.2). Like [`Warp::serve`], the call returns only once the
    /// uploaded logs' records are durable (except under
    /// [`Durability::Relaxed`]) — client logs are repair evidence and get
    /// the same acknowledgement contract as actions.
    pub fn upload_client_logs(&self, logs: Vec<PageVisitRecord>) {
        let durable_acks = self.durable_acks;
        self.with_server(move |server| {
            server.upload_client_logs(logs);
            if durable_acks {
                server.flush_durable();
            }
        });
    }

    /// Starts a repair with the builder-configured strategy and returns a
    /// handle for status polling and outcome joining. The engine executes
    /// the repair in queue order; requests submitted after this call are
    /// served against the repaired state.
    pub fn repair(&self, request: RepairRequest) -> RepairHandle {
        self.repair_with_strategy(request, None)
    }

    /// [`Warp::repair`] with an explicit engine strategy.
    pub fn repair_with(&self, request: RepairRequest, strategy: RepairStrategy) -> RepairHandle {
        self.repair_with_strategy(request, Some(strategy))
    }

    fn repair_with_strategy(
        &self,
        request: RepairRequest,
        strategy: Option<RepairStrategy>,
    ) -> RepairHandle {
        let state = Arc::new(AtomicU8::new(STATUS_QUEUED));
        let (outcome, rx) = channel();
        self.tx
            .send(EngineMsg::Repair {
                request,
                strategy,
                state: state.clone(),
                outcome,
            })
            .expect("warp engine stopped");
        RepairHandle::new(state, rx)
    }

    /// The crash-interrupted repair recovery found, if any (a logged
    /// `RepairBegin` with no commit or abort).
    pub fn pending_repair(&self) -> Option<RepairRequest> {
        self.with_server(|server| server.pending_repair().cloned())
    }

    /// Re-runs the crash-interrupted repair recovery found, if any. The
    /// check and the start are atomic on the engine thread, so concurrent
    /// resumers cannot run the repair twice.
    pub fn resume_pending_repair(&self) -> Option<RepairHandle> {
        let state = Arc::new(AtomicU8::new(STATUS_QUEUED));
        let (outcome, outcome_rx) = channel();
        let (accepted, accepted_rx) = channel();
        self.tx
            .send(EngineMsg::ResumeRepair {
                state: state.clone(),
                outcome,
                accepted,
            })
            .expect("warp engine stopped");
        if accepted_rx.recv().expect("warp engine stopped") {
            Some(RepairHandle::new(state, outcome_rx))
        } else {
            None
        }
    }

    /// Blocks until every log record appended so far is durable. Useful to
    /// upgrade a [`Durability::Relaxed`] deployment to a known-durable
    /// point (e.g. before a planned shutdown).
    pub fn flush(&self) {
        self.with_server(|server| server.flush_durable());
    }

    /// Takes a checkpoint now (compacting the durable log).
    pub fn checkpoint(&self) {
        self.with_server(|server| server.checkpoint());
    }

    /// The group-commit writer's batching counters.
    pub fn writer_stats(&self) -> WriterStats {
        self.with_server(|server| server.writer_stats())
    }

    /// The durable LSN watermark: the next LSN the log will assign, with
    /// every record below it on disk by the time this returns. The ack
    /// metadata the log shipper keys on, surfaced for observability
    /// (compare against a standby's applied LSN to measure lag). Always 0
    /// for in-memory deployments.
    pub fn durable_lsn(&self) -> u64 {
        self.with_server(|server| server.durable_lsn())
    }

    /// Stops the engine and returns the underlying [`WarpServer`] with
    /// everything flushed to the durable log and the store folded back to
    /// the synchronous sink. Outstanding clones of this handle keep
    /// working as dead handles: [`Warp::serve`] returns 503.
    ///
    /// # Panics
    ///
    /// Panics if the engine already stopped (a second `close`, or an engine
    /// panic).
    pub fn close(self) -> WarpServer {
        let (reply, rx) = channel();
        self.tx
            .send(EngineMsg::Close { reply })
            .expect("warp engine stopped");
        *rx.recv().expect("warp engine stopped")
    }
}

impl Transport for Warp {
    fn send(&mut self, request: HttpRequest) -> HttpResponse {
        self.serve(request)
    }
}

fn engine_stopped_response() -> HttpResponse {
    let mut response = HttpResponse::ok("warp engine stopped".to_string());
    response.status = 503;
    response
}

/// Serves one request on the engine thread (the classic path and the
/// sharded engine's global lane) and releases the response per the
/// durability contract.
fn classic_serve(
    server: &mut WarpServer,
    durable_acks: bool,
    request: HttpRequest,
    reply: Sender<HttpResponse>,
) {
    let response = server.handle(request);
    release_response(server, durable_acks, response, reply);
}

/// Releases a response to its caller: under durable acks it is handed to
/// the log writer, which fires the callback only after the action's record
/// is durable — the engine moves on immediately, so durability waits happen
/// off the serving path.
fn release_response(
    server: &WarpServer,
    durable_acks: bool,
    response: HttpResponse,
    reply: Sender<HttpResponse>,
) {
    if durable_acks {
        if let Some(sink) = &server.store {
            sink.notify_durable(move || {
                let _ = reply.send(response);
            });
            return;
        }
    }
    let _ = reply.send(response);
}

/// Runs a queued repair to completion and reports the outcome (shared by
/// both engine flavors; the sharded engine barriers first).
fn run_repair_msg(
    server: &mut WarpServer,
    durable_acks: bool,
    strategy: RepairStrategy,
    request: RepairRequest,
    state: &AtomicU8,
    outcome: Sender<RepairOutcome>,
) {
    state.store(STATUS_RUNNING, Ordering::Release);
    let result = server.repair_with(request, strategy);
    if durable_acks {
        // The commit/abort record must be durable before the outcome is
        // reported.
        server.flush_durable();
    }
    state.store(STATUS_COMPLETED, Ordering::Release);
    let _ = outcome.send(result);
}

/// Resumes the crash-interrupted repair, if one is pending.
fn run_resume_msg(
    server: &mut WarpServer,
    durable_acks: bool,
    strategy: RepairStrategy,
    state: &AtomicU8,
    outcome: Sender<RepairOutcome>,
    accepted: Sender<bool>,
) {
    if server.pending_repair().is_none() {
        let _ = accepted.send(false);
        return;
    }
    let _ = accepted.send(true);
    state.store(STATUS_RUNNING, Ordering::Release);
    let result = server
        .resume_pending_repair(strategy)
        .expect("pending repair checked above");
    if durable_acks {
        server.flush_durable();
    }
    state.store(STATUS_COMPLETED, Ordering::Release);
    let _ = outcome.send(result);
}

fn engine_loop(
    mut server: WarpServer,
    durability: Durability,
    default_strategy: RepairStrategy,
    rx: Receiver<EngineMsg>,
) {
    let durable_acks = durability.acks_after_durability() && server.is_persistent();
    while let Ok(msg) = rx.recv() {
        match msg {
            EngineMsg::Serve { request, reply } => {
                classic_serve(&mut server, durable_acks, request, reply);
            }
            EngineMsg::With(f) => f(&mut server),
            EngineMsg::Repair {
                request,
                strategy,
                state,
                outcome,
            } => run_repair_msg(
                &mut server,
                durable_acks,
                strategy.unwrap_or(default_strategy),
                request,
                &state,
                outcome,
            ),
            EngineMsg::ResumeRepair {
                state,
                outcome,
                accepted,
            } => run_resume_msg(
                &mut server,
                durable_acks,
                default_strategy,
                &state,
                outcome,
                accepted,
            ),
            EngineMsg::Close { reply } => {
                server.disable_group_commit();
                let _ = reply.send(Box::new(server));
                return;
            }
            EngineMsg::ShardDone { .. } => {
                unreachable!("classic engine has no shard workers")
            }
        }
    }
    // Every handle dropped: dropping the server flushes and stops the
    // group-commit writer, so nothing submitted is lost.
}

// ---------------------------------------------------------------------------
// The sharded engine
// ---------------------------------------------------------------------------

/// The state a shard epoch shares with its workers: the database (checked
/// out of the engine's server for the epoch's duration), the logical clock
/// (atomic; workers tick it per query), and the source tree snapshot.
struct ShardEpoch {
    db: Mutex<TimeTravelDb>,
    clock: LogicalClock,
    sources: SourceStore,
}

/// One request dispatched to a shard worker.
struct ShardJob {
    /// Position in the serialized timeline (recording happens in `seq`
    /// order regardless of shard completion order).
    seq: u64,
    /// Pre-assigned action time, ticked at dispatch on the engine thread.
    time: i64,
    request: HttpRequest,
    entry: String,
    epoch: Arc<ShardEpoch>,
    reply: Sender<HttpResponse>,
}

/// A finished shard execution parked in the reorder buffer until every
/// earlier `seq` has been recorded.
struct DoneAction {
    time: i64,
    request: HttpRequest,
    entry: String,
    result: AppRunResult,
    reply: Sender<HttpResponse>,
}

fn shard_worker(jobs: Receiver<ShardJob>, engine: Sender<EngineMsg>) {
    while let Ok(job) = jobs.recv() {
        let ShardJob {
            seq,
            time,
            request,
            entry,
            epoch,
            reply,
        } = job;
        // The router guarantees shardable entries are deterministic, so
        // these counters are never consulted; dummies keep the engine's
        // real counters out of the concurrent path.
        let mut rng_counter = 0u64;
        let mut session_counter = 0u64;
        let result = run_application(AppRunContext {
            request: &request,
            entry_script: entry.clone(),
            sources: &epoch.sources,
            action_time: time,
            db: DbAccess::Shared(&epoch.db),
            mode: ExecMode::Normal {
                clock: &epoch.clock,
                rng_counter: &mut rng_counter,
                session_counter: &mut session_counter,
            },
        });
        debug_assert!(
            result.nondet.is_empty() && rng_counter == 0 && session_counter == 0,
            "the shard router must escalate nondeterministic entries"
        );
        // Release the epoch BEFORE handing the result back, so a barrier's
        // `Arc::try_unwrap` succeeds once every result is recorded.
        drop(epoch);
        if engine
            .send(EngineMsg::ShardDone {
                seq,
                time,
                request,
                entry,
                result: Box::new(result),
                reply,
            })
            .is_err()
        {
            return;
        }
    }
}

struct ShardedEngine {
    server: WarpServer,
    durable_acks: bool,
    shards: usize,
    workers: Vec<Sender<ShardJob>>,
    /// Round-robin cursor for [`Route::Any`] requests.
    rr_next: usize,
    /// The active epoch plus the generation and synthetic-id watermark
    /// captured when the database was checked out (constant for the epoch:
    /// repairs are barriers and sharded inserts carry explicit row ids).
    epoch: Option<(Arc<ShardEpoch>, Generation, i64)>,
    /// Schema snapshot the router plans against; captured while the
    /// database is home, invalidated at every barrier.
    schema: Option<ShardSchema>,
    /// Per-entry route plans, invalidated at every barrier (source changes
    /// and DDL all pass through barriers).
    plans: BTreeMap<String, RoutePlan>,
    next_seq: u64,
    next_record: u64,
    in_flight: usize,
    pending: BTreeMap<u64, DoneAction>,
    /// Messages that arrived while a barrier was draining, replayed FIFO.
    backlog: VecDeque<EngineMsg>,
}

impl ShardedEngine {
    /// Routes one request: shardable footprints dispatch to their owner
    /// worker, everything else drains to a barrier and runs on the global
    /// lane (the classic serve path).
    fn serve(
        &mut self,
        request: HttpRequest,
        reply: Sender<HttpResponse>,
        rx: &Receiver<EngineMsg>,
    ) {
        let entry = self.server.router.resolve(&request.path);
        // Clients with a queued cookie invalidation need the classic
        // pre-processing in `WarpServer::handle`; unrouted paths record a
        // 404 through the same path.
        let classic_only = entry.is_none()
            || request
                .warp
                .client_id
                .as_ref()
                .is_some_and(|c| self.server.pending_cookie_invalidations.contains(c));
        let route = match (classic_only, &entry) {
            (false, Some(entry)) => {
                let plan = self.plan_for(entry);
                classify(&plan, &request, self.shards)
            }
            _ => Route::Global,
        };
        match route {
            Route::Global => {
                self.barrier(rx);
                classic_serve(&mut self.server, self.durable_acks, request, reply);
            }
            Route::Shard(shard) => self.dispatch(shard, entry.expect("routed"), request, reply),
            Route::Any => {
                let shard = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.shards;
                self.dispatch(shard, entry.expect("routed"), request, reply);
            }
        }
    }

    /// The cached route plan for an entry script, planning it now if new.
    /// Planning reads the schema snapshot, which is captured while the
    /// database is home (before the first checkout of an epoch).
    fn plan_for(&mut self, entry: &str) -> RoutePlan {
        if self.schema.is_none() {
            debug_assert!(self.epoch.is_none(), "schema outlives its epoch");
            self.schema = Some(ShardSchema::capture(&self.server.db));
        }
        if let Some(plan) = self.plans.get(entry) {
            return plan.clone();
        }
        let plan = plan_entry(
            entry,
            &self.server.sources,
            self.server.clock.now(),
            self.schema.as_ref().expect("captured above"),
        );
        self.plans.insert(entry.to_string(), plan.clone());
        plan
    }

    /// Sends a request to a shard worker, checking the database out into a
    /// new epoch first if none is active.
    fn dispatch(
        &mut self,
        shard: usize,
        entry: String,
        request: HttpRequest,
        reply: Sender<HttpResponse>,
    ) {
        if self.epoch.is_none() {
            let db = std::mem::replace(&mut self.server.db, TimeTravelDb::new());
            let gen = db.current_generation();
            let watermark = db.synthetic_id_watermark();
            let epoch = Arc::new(ShardEpoch {
                db: Mutex::new(db),
                clock: self.server.clock.clone(),
                sources: self.server.sources.clone(),
            });
            self.epoch = Some((epoch, gen, watermark));
        }
        let (epoch, _, _) = self.epoch.as_ref().expect("epoch just ensured");
        let seq = self.next_seq;
        self.next_seq += 1;
        let time = self.server.clock.tick();
        self.in_flight += 1;
        self.workers[shard]
            .send(ShardJob {
                seq,
                time,
                request,
                entry,
                epoch: epoch.clone(),
                reply,
            })
            .expect("shard worker died");
    }

    /// Parks a finished execution and records the contiguous prefix of the
    /// timeline, releasing each response per the durability contract.
    fn record_ready(&mut self, seq: u64, done: DoneAction) {
        self.pending.insert(seq, done);
        while let Some(done) = self.pending.remove(&self.next_record) {
            self.next_record += 1;
            self.in_flight -= 1;
            let (_, gen, watermark) = *self.epoch.as_ref().expect("epoch active");
            let response = done.result.response.clone();
            self.server.record_served(
                done.time,
                &done.request,
                &response,
                &done.entry,
                done.result,
                Some((gen, watermark)),
            );
            release_response(&self.server, self.durable_acks, response, done.reply);
        }
    }

    /// Drains every in-flight shard execution, reclaims the database, and
    /// invalidates the router caches. Messages arriving mid-drain are
    /// backlogged in order. This is the serialization point the global lane
    /// and every administrative operation go through.
    fn barrier(&mut self, rx: &Receiver<EngineMsg>) {
        while self.in_flight > 0 {
            match rx.recv().expect("shard workers hold a sender") {
                EngineMsg::ShardDone {
                    seq,
                    time,
                    request,
                    entry,
                    result,
                    reply,
                } => self.record_ready(
                    seq,
                    DoneAction {
                        time,
                        request,
                        entry,
                        result: *result,
                        reply,
                    },
                ),
                other => self.backlog.push_back(other),
            }
        }
        if let Some((epoch, _, _)) = self.epoch.take() {
            let mut epoch = epoch;
            let db = loop {
                // Workers drop their Arc before sending ShardDone, so once
                // everything in flight is recorded the engine's clone is the
                // last one — modulo a send/drop race worth a yield.
                match Arc::try_unwrap(epoch) {
                    Ok(e) => break e.db.into_inner().expect("shard db lock poisoned"),
                    Err(back) => {
                        epoch = back;
                        std::thread::yield_now();
                    }
                }
            };
            self.server.db = db;
            self.plans.clear();
            self.schema = None;
            // Checkpointing was deferred while the database was checked out.
            self.server.maybe_checkpoint();
        }
    }
}

/// The sharded engine loop: `shards` workers execute partition-disjoint
/// requests concurrently against a shared database epoch; the engine thread
/// remains the single sequencing point (action ids, times, log records).
fn sharded_engine_loop(
    server: WarpServer,
    durability: Durability,
    default_strategy: RepairStrategy,
    rx: Receiver<EngineMsg>,
    engine_tx: Sender<EngineMsg>,
    shards: usize,
    alive: Weak<()>,
) {
    let durable_acks = durability.acks_after_durability() && server.is_persistent();
    let mut workers = Vec::with_capacity(shards);
    for i in 0..shards {
        let (job_tx, job_rx) = channel::<ShardJob>();
        let engine = engine_tx.clone();
        std::thread::Builder::new()
            .name(format!("warp-shard-{i}"))
            .spawn(move || shard_worker(job_rx, engine))
            .expect("spawning a shard worker thread");
        workers.push(job_tx);
    }
    drop(engine_tx);
    let mut engine = ShardedEngine {
        server,
        durable_acks,
        shards,
        workers,
        rr_next: 0,
        epoch: None,
        schema: None,
        plans: BTreeMap::new(),
        next_seq: 0,
        next_record: 0,
        in_flight: 0,
        pending: BTreeMap::new(),
        backlog: VecDeque::new(),
    };
    let close_reply = loop {
        let msg = match engine.backlog.pop_front() {
            Some(msg) => msg,
            // The workers' engine senders mask channel disconnect, so idle
            // ticks watch the liveness token to notice that every public
            // handle is gone.
            None => match rx.recv_timeout(Duration::from_millis(25)) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => {
                    if alive.strong_count() == 0 && engine.in_flight == 0 {
                        engine.barrier(&rx);
                        break None;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    engine.barrier(&rx);
                    break None;
                }
            },
        };
        match msg {
            EngineMsg::Serve { request, reply } => engine.serve(request, reply, &rx),
            EngineMsg::ShardDone {
                seq,
                time,
                request,
                entry,
                result,
                reply,
            } => {
                engine.record_ready(
                    seq,
                    DoneAction {
                        time,
                        request,
                        entry,
                        result: *result,
                        reply,
                    },
                );
                // Checkpoints are barriers (they need the database home);
                // take one between epochs when the log asks for it.
                if engine.in_flight == 0
                    && engine
                        .server
                        .store
                        .as_ref()
                        .is_some_and(|sink| sink.checkpoint_due())
                {
                    engine.barrier(&rx);
                }
            }
            EngineMsg::With(f) => {
                engine.barrier(&rx);
                f(&mut engine.server);
            }
            EngineMsg::Repair {
                request,
                strategy,
                state,
                outcome,
            } => {
                engine.barrier(&rx);
                run_repair_msg(
                    &mut engine.server,
                    durable_acks,
                    strategy.unwrap_or(default_strategy),
                    request,
                    &state,
                    outcome,
                );
            }
            EngineMsg::ResumeRepair {
                state,
                outcome,
                accepted,
            } => {
                engine.barrier(&rx);
                run_resume_msg(
                    &mut engine.server,
                    durable_acks,
                    default_strategy,
                    &state,
                    outcome,
                    accepted,
                );
            }
            EngineMsg::Close { reply } => {
                engine.barrier(&rx);
                break Some(reply);
            }
        }
    };
    let ShardedEngine {
        mut server,
        workers,
        ..
    } = engine;
    // Dropping the job senders stops the workers.
    drop(workers);
    if let Some(reply) = close_reply {
        server.disable_group_commit();
        let _ = reply.send(Box::new(server));
    }
    // Otherwise dropping the server flushes and stops the group-commit
    // writer, so nothing submitted is lost.
}

/// Uniform access to a serving Warp deployment, implemented by both the
/// concurrent [`Warp`] handle and the deprecated synchronous [`WarpServer`]
/// shim. Workloads, attack drivers and scenarios are written against this
/// trait, which is how the shim-equivalence tests drive the identical
/// workload through both front ends.
pub trait WarpHost: Transport {
    /// Runs `f` against the underlying server and returns its result.
    fn with_host<R, F>(&mut self, f: F) -> R
    where
        F: FnOnce(&mut WarpServer) -> R + Send + 'static,
        R: Send + 'static;

    /// Uploads client-side browser logs.
    fn upload_logs(&mut self, logs: Vec<PageVisitRecord>) {
        self.with_host(move |server| server.upload_client_logs(logs));
    }

    /// Runs a repair to completion with the given strategy.
    fn host_repair(&mut self, request: RepairRequest, strategy: RepairStrategy) -> RepairOutcome {
        self.with_host(move |server| server.repair_with(request, strategy))
    }
}

impl WarpHost for WarpServer {
    fn with_host<R, F>(&mut self, f: F) -> R
    where
        F: FnOnce(&mut WarpServer) -> R + Send + 'static,
        R: Send + 'static,
    {
        f(self)
    }
}

impl WarpHost for Warp {
    fn with_host<R, F>(&mut self, f: F) -> R
    where
        F: FnOnce(&mut WarpServer) -> R + Send + 'static,
        R: Send + 'static,
    {
        self.with_server(f)
    }

    fn upload_logs(&mut self, logs: Vec<PageVisitRecord>) {
        // Through the durability-honoring upload path, not a bare
        // `with_host` closure.
        self.upload_client_logs(logs);
    }

    fn host_repair(&mut self, request: RepairRequest, strategy: RepairStrategy) -> RepairOutcome {
        // Through the first-class repair path, so scenarios driven over a
        // `Warp` handle exercise the same machinery applications use.
        self.repair_with(request, strategy).join()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_store::MemoryBackend;
    use warp_ttdb::TableAnnotation;

    fn tiny_app() -> AppConfig {
        let mut config = AppConfig::new("facade-tiny");
        config.add_table(
            "CREATE TABLE page (page_id INTEGER PRIMARY KEY, title TEXT UNIQUE, body TEXT)",
            TableAnnotation::new()
                .row_id("page_id")
                .partitions(["title"]),
        );
        for p in 0..4 {
            config.seed(format!(
                "INSERT INTO page (page_id, title, body) VALUES ({}, 'Page{p}', 'seed {p}')",
                p + 1
            ));
        }
        config.add_source(
            "view.wasl",
            "let rows = db_query(\"SELECT body FROM page WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             if (len(rows) == 0) { echo(\"missing\"); } else { echo(rows[0][\"body\"]); }",
        );
        config.add_source(
            "edit.wasl",
            "db_query(\"UPDATE page SET body = '\" . sql_escape(param(\"body\")) . \"' WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             echo(\"saved\");",
        );
        config
    }

    fn edit(page: usize, body: &str) -> HttpRequest {
        HttpRequest::post(
            "/edit.wasl",
            [("title", format!("Page{page}").as_str()), ("body", body)],
        )
    }

    #[test]
    fn serves_and_records_through_the_handle() {
        let warp = Warp::builder().app(tiny_app()).start();
        let r = warp.serve(HttpRequest::get("/view.wasl?title=Page0"));
        assert!(r.body.contains("seed 0"));
        warp.serve(edit(0, "edited"));
        let r = warp.serve(HttpRequest::get("/view.wasl?title=Page0"));
        assert!(r.body.contains("edited"));
        assert_eq!(warp.with_server(|s| s.history.len()), 3);
    }

    #[test]
    fn concurrent_serving_from_many_threads() {
        let warp = Warp::builder().app(tiny_app()).start();
        let threads: Vec<_> = (0..4usize)
            .map(|t| {
                let warp = warp.clone();
                std::thread::spawn(move || {
                    for i in 0..8 {
                        let r = warp.serve(edit(t % 4, &format!("t{t} rev {i}")));
                        assert!(r.body.contains("saved"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(warp.with_server(|s| s.history.len()), 32);
    }

    #[test]
    fn group_commit_acks_are_durable() {
        let backend = MemoryBackend::new();
        let (warp, report) = Warp::builder()
            .app(tiny_app())
            .backend(Box::new(backend.clone()))
            .durability(Durability::Group {
                max_batch: 16,
                max_delay: Duration::from_micros(200),
            })
            .build()
            .unwrap();
        assert!(!report.recovered);
        for i in 0..10 {
            warp.serve(edit(i % 4, &format!("rev {i}")));
        }
        // Every request above was acknowledged, so a crash right now must
        // lose nothing. The image is taken BEFORE the handle is dropped —
        // dropping flushes the writer, which would mask an
        // ack-before-durable regression.
        let image = backend.snapshot();
        drop(warp);
        let (warp, report) = Warp::builder()
            .app(tiny_app())
            .backend(Box::new(image))
            .build()
            .unwrap();
        assert!(report.recovered);
        assert_eq!(warp.with_server(|s| s.history.len()), 10);
        let r = warp.serve(HttpRequest::get("/view.wasl?title=Page1"));
        assert!(r.body.contains("rev 9"), "{}", r.body);
    }

    #[test]
    fn relaxed_tier_becomes_durable_on_flush() {
        let backend = MemoryBackend::new();
        let warp = Warp::builder()
            .app(tiny_app())
            .backend(Box::new(backend.clone()))
            .durability(Durability::Relaxed)
            .start();
        for i in 0..6 {
            warp.serve(edit(i % 4, &format!("rev {i}")));
        }
        warp.flush();
        drop(warp);
        let (warp, _) = Warp::builder()
            .app(tiny_app())
            .backend(Box::new(backend))
            .build()
            .unwrap();
        assert_eq!(warp.with_server(|s| s.history.len()), 6);
    }

    #[test]
    fn repair_handle_reports_status_and_outcome() {
        let warp = Warp::builder().app(tiny_app()).start();
        warp.serve(edit(1, "<script>evil</script>"));
        let patch = crate::sourcefs::Patch::new(
            "view.wasl",
            "let rows = db_query(\"SELECT body FROM page WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             if (len(rows) == 0) { echo(\"missing\"); } else { echo(htmlspecialchars(rows[0][\"body\"])); }",
            "sanitise output",
        );
        let handle = warp.repair(RepairRequest::RetroactivePatch {
            patch,
            from_time: 0,
        });
        let outcome = handle.join();
        assert!(!outcome.aborted);
        let r = warp.serve(HttpRequest::get("/view.wasl?title=Page1"));
        assert!(r.body.contains("&lt;script&gt;"), "{}", r.body);
    }

    #[test]
    fn resume_pending_repair_through_the_handle() {
        let backend = MemoryBackend::new();
        let warp = Warp::builder()
            .app(tiny_app())
            .backend(Box::new(backend.clone()))
            .start();
        warp.serve(edit(1, "broken"));
        // Forge the crash window: RepairBegin in the log, no commit.
        let patch = crate::sourcefs::Patch::new("edit.wasl", "echo(\"noop\");", "noop");
        warp.with_server(move |server| {
            server.log_event(&crate::persist::LogEvent::RepairBegin(
                RepairRequest::RetroactivePatch {
                    patch,
                    from_time: 0,
                },
            ));
            server.flush_durable();
        });
        drop(warp); // crash

        let (warp, report) = Warp::builder()
            .app(tiny_app())
            .backend(Box::new(backend))
            .build()
            .unwrap();
        assert!(report.pending_repair);
        assert!(warp.pending_repair().is_some());
        let handle = warp.resume_pending_repair().expect("a repair to resume");
        let _ = handle.join();
        assert!(warp.pending_repair().is_none());
        assert!(
            warp.resume_pending_repair().is_none(),
            "a second resume finds nothing"
        );
    }

    #[test]
    fn close_returns_the_engine_server_and_dead_handles_get_503() {
        let warp = Warp::builder().app(tiny_app()).start();
        warp.serve(edit(2, "kept"));
        let clone = warp.clone();
        let mut server = warp.close();
        assert_eq!(server.history.len(), 1);
        assert!(server.db.canonical_dump().contains("kept"));
        let r = clone.serve(HttpRequest::get("/view.wasl?title=Page2"));
        assert_eq!(r.status, 503);
    }

    #[test]
    fn writer_stats_surface_batching() {
        let warp = Warp::builder()
            .app(tiny_app())
            .backend(Box::new(MemoryBackend::new()))
            .durability(Durability::Immediate)
            .start();
        for i in 0..5 {
            warp.serve(edit(i % 4, "x"));
        }
        let stats = warp.writer_stats();
        assert_eq!(stats.records, 5);
        assert_eq!(stats.largest_batch, 1, "immediate tier never batches");
    }
}
