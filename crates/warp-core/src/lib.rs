//! `warp-core` — the Warp intrusion-recovery system (the paper's primary
//! contribution).
//!
//! This crate ties the substrates together into the system of Figure 1:
//!
//! * The [`server::WarpServer`] is the application server: it routes HTTP
//!   requests to WASL application code, interposes on every database query
//!   and non-deterministic call through the application repair manager's
//!   host ([`apphost`]), stamps everything with a logical clock, and records
//!   actions with their input/output dependencies into the action history
//!   graph ([`history`]).
//! * The [`sourcefs::SourceStore`] holds the application's source files with
//!   full version history, so security patches can be applied *in the past*.
//! * The repair controller ([`repair`]) implements rollback-and-re-execute
//!   repair: retroactive patching (§3), partition-based selective query
//!   re-execution over the time-travel database (§4), DOM-level browser
//!   re-execution (§5), conflict queueing, and user-initiated undo.
//! * [`history`] also stores the per-client browser logs (with quotas) and
//!   the storage accounting reported in the paper's Table 6; [`stats`]
//!   collects the repair-time breakdown reported in Tables 7 and 8.
//!
//! # Quickstart
//!
//! The public entry point is the [`Warp`] handle: configure a deployment
//! with [`Warp::builder`] (application, storage backend, [`Durability`]
//! tier, repair workers), then serve requests through the cloneable handle
//! from as many threads as you like — they funnel into one engine, so the
//! recorded history stays a single serializable timeline. With
//! [`WarpBuilder::engine_shards`] the engine additionally fans request
//! *execution* out to shard workers by statically-predicted partition
//! footprint; actions are still sequenced, recorded and logged at a single
//! point, so everything downstream (durability, recovery, repair) is
//! unchanged.
//!
//! ```
//! use warp_core::{AppConfig, Warp};
//! use warp_http::HttpRequest;
//!
//! let mut config = AppConfig::new("hello-app");
//! config.add_source(
//!     "index.wasl",
//!     "echo(\"<p>Hello \" . htmlspecialchars(param(\"name\")) . \"</p>\");",
//! );
//! let warp = Warp::builder().app(config).start();
//!
//! // Clones of the handle serve concurrently from other threads.
//! let handle = warp.clone();
//! let worker = std::thread::spawn(move || {
//!     handle.serve(HttpRequest::get("/index.wasl?name=Thread"))
//! });
//! let response = warp.serve(HttpRequest::get("/index.wasl?name=World"));
//! assert!(response.body.contains("Hello World"));
//! assert!(worker.join().unwrap().body.contains("Hello Thread"));
//!
//! // Both requests were recorded in one action history.
//! assert_eq!(warp.with_server(|server| server.history.len()), 2);
//! ```

pub mod apphost;
pub mod clock;
pub mod config;
pub mod conflict;
pub mod facade;
pub mod history;
pub mod persist;
pub mod repair;
pub mod scheduler;
pub mod server;
pub(crate) mod shard;
pub mod sourcefs;
pub mod stats;

pub use config::{AppConfig, ServerConfig};
pub use conflict::{Conflict, ConflictKind};
pub use facade::{Durability, RepairHandle, RepairStatus, Warp, WarpBuilder, WarpHost};
pub use history::{ActionId, ActionRecord, HistoryGraph, NondetRecord, QueryRecord};
pub use persist::RecoveryReport;
pub use repair::{RepairOutcome, RepairRequest};
pub use scheduler::RepairStrategy;
pub use server::WarpServer;
pub use sourcefs::{Patch, SourceStore};
pub use stats::{LoggingStats, RepairStats};
// Re-export the storage subsystem so applications and binaries can
// configure backends without depending on `warp-store` directly.
pub use warp_store::{
    BatchPolicy, FileBackend, MaintenanceStats, MemoryBackend, ShipFrame, ShipperHook,
    StorageBackend, StoreError, StoreOptions, WriterStats, KILL_AFTER_CKPT_WRITE_ENV,
};
