//! The action history graph (paper §2.1, borrowed from Retro and extended).
//!
//! Nodes in the conceptual graph are versioned objects: source files,
//! database partitions, HTTP responses, and browser page visits. Actions are
//! application runs (one per handled HTTP request). Warp stores the graph as
//! an append-only list of [`ActionRecord`]s plus indices from objects to the
//! actions that touched them; the repair controller loads actions
//! incrementally from these indices.

use crate::stats::LoggingStats;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use warp_browser::PageVisitRecord;
use warp_http::{HttpRequest, HttpResponse};
use warp_script::Value as ScriptValue;
use warp_ttdb::{PartitionSet, QueryDependency};

/// Identifier of one recorded action (application run).
pub type ActionId = u64;

/// A recorded call to a non-deterministic function (paper §3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NondetRecord {
    /// Function name (`time`, `rand`, `session_start`, ...).
    pub func: String,
    /// The arguments it was called with.
    pub args: Vec<ScriptValue>,
    /// The value it returned during the original execution.
    pub result: ScriptValue,
}

/// A recorded database query issued by an application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The SQL text as issued by the application.
    pub sql: String,
    /// Logical time at which the query executed.
    pub time: i64,
    /// Fingerprint of the result the application saw.
    pub result_fingerprint: u64,
    /// True if the query modified the database.
    pub is_write: bool,
    /// Row IDs written (for two-phase re-execution and rollback).
    pub written_row_ids: Vec<warp_sql::Value>,
    /// Partition-level dependencies.
    pub dependency: QueryDependency,
}

/// Correlation of a server-side action with the browser that caused it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientRef {
    /// The browser's client ID.
    pub client_id: String,
    /// The page visit within that client.
    pub visit_id: u64,
    /// The request within that visit.
    pub request_id: u64,
}

/// One action in the history graph: a single application run handling one
/// HTTP request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionRecord {
    /// The action's identifier.
    pub id: ActionId,
    /// Logical time at which the run started.
    pub time: i64,
    /// The HTTP request as received.
    pub request: HttpRequest,
    /// The HTTP response as sent.
    pub response: HttpResponse,
    /// Browser correlation, when the request carried Warp headers.
    pub client: Option<ClientRef>,
    /// The script file that handled the request.
    pub entry_script: String,
    /// Every source file loaded during the run (entry script + includes).
    pub loaded_files: Vec<String>,
    /// Database queries issued, in order.
    pub queries: Vec<QueryRecord>,
    /// Non-deterministic calls, in order.
    pub nondet: Vec<NondetRecord>,
    /// True if the action has been cancelled by a repair (its effects have
    /// been rolled back and it is skipped by later repairs).
    pub cancelled: bool,
}

impl ActionRecord {
    /// Approximate bytes this record contributes to the application-level log
    /// (Table 6 accounting: request + response + dependency metadata).
    pub fn approximate_app_bytes(&self) -> usize {
        let mut total = 64 + self.entry_script.len() + self.response.body.len() / 8;
        for f in &self.loaded_files {
            total += f.len();
        }
        for n in &self.nondet {
            total += 12 + n.func.len();
        }
        total
    }

    /// Approximate bytes this record contributes to the database-level log
    /// (query text plus the recorded result fingerprints and row IDs).
    pub fn approximate_db_bytes(&self) -> usize {
        let mut total = 0;
        for q in &self.queries {
            total += q.sql.len() + 24 + q.written_row_ids.len() * 8;
        }
        total
    }

    /// The union of partitions read by this action's queries.
    pub fn read_partitions(&self) -> Vec<&PartitionSet> {
        self.queries
            .iter()
            .map(|q| &q.dependency.read_partitions)
            .collect()
    }

    /// The normalized partition footprint of this action: every non-empty
    /// partition set its queries read or wrote. A write whose recorded
    /// partitions are empty but that touched rows (e.g. an INSERT that never
    /// supplied a partition column) is widened to the whole table, so the
    /// footprint never under-approximates what the action touched.
    pub fn partition_footprint(&self) -> Vec<PartitionSet> {
        let mut out = Vec::new();
        for q in &self.queries {
            let (read, write) = normalized_dependency_partitions(&q.dependency);
            out.extend(read.cloned());
            out.extend(write);
        }
        out
    }
}

/// Normalizes one query dependency's partition sets for indexing, partition
/// planning and escalation checks: `(read set, write set)`, each omitted
/// when empty, and the write set widened to the whole table when the query
/// wrote rows whose partitions could not be derived. Every consumer of
/// partition dependencies must go through this one definition — the
/// scheduler's escalation check and the planner's footprints have to agree
/// on it exactly.
pub(crate) fn normalized_dependency_partitions(
    dep: &warp_ttdb::QueryDependency,
) -> (Option<&PartitionSet>, Option<PartitionSet>) {
    let read = Some(&dep.read_partitions).filter(|p| !p.is_empty());
    let write = if !dep.write_partitions.is_empty() {
        Some(dep.write_partitions.clone())
    } else if dep.is_write && !dep.written_row_ids.is_empty() {
        Some(PartitionSet::whole(&dep.table))
    } else {
        None
    };
    (read, write)
}

/// The actions that read and wrote one partition of a table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PartitionHub {
    /// Actions whose queries read this partition.
    pub readers: Vec<ActionId>,
    /// Actions whose queries wrote this partition.
    pub writers: Vec<ActionId>,
}

/// Per-table partition usage: which actions touched which partitions, plus
/// the actions whose queries conservatively covered the whole table. The
/// partitioned repair scheduler builds its dependency groups from this index
/// instead of rescanning every recorded query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TablePartitionIndex {
    /// Actions that read the whole table (unpinned `WHERE`, full scans).
    pub whole_readers: Vec<ActionId>,
    /// Actions that wrote the whole table (or wrote rows with no derivable
    /// partition values).
    pub whole_writers: Vec<ActionId>,
    /// Per `(partition column, value)`: the actions touching that partition.
    pub keys: BTreeMap<(String, String), PartitionHub>,
}

/// The persistent log: actions, per-client browser logs, and indices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HistoryGraph {
    actions: Vec<ActionRecord>,
    /// Index: source file name → actions that loaded it.
    by_file: BTreeMap<String, Vec<ActionId>>,
    /// Index: (client id, visit id) → actions caused by that page visit.
    by_visit: BTreeMap<(String, u64), Vec<ActionId>>,
    /// Index: table → partition usage (readers/writers per partition).
    by_partition: BTreeMap<String, TablePartitionIndex>,
    /// Incremental union-find forest over action IDs: two actions share a
    /// root iff they are dependency-linked (same page visit, or reader/writer
    /// of a common written partition, transitively). Maintained as actions
    /// arrive, so partition planning no longer rescans the whole history.
    partition_parent: Vec<ActionId>,
    /// Per-client uploaded browser logs, keyed by client then visit.
    client_logs: BTreeMap<String, BTreeMap<u64, PageVisitRecord>>,
    /// Per-client storage quota in bytes for uploaded logs (paper §5.2).
    pub client_log_quota_bytes: usize,
}

impl HistoryGraph {
    /// Creates an empty history graph with the default per-client quota.
    pub fn new() -> Self {
        HistoryGraph {
            client_log_quota_bytes: 4 * 1024 * 1024,
            ..Default::default()
        }
    }

    /// Number of recorded actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True if no actions have been recorded.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Appends an action and updates the indices. Returns its ID.
    pub fn record_action(&mut self, mut action: ActionRecord) -> ActionId {
        let id = self.actions.len() as ActionId;
        action.id = id;
        // Link the new action into the incremental dependency forest first:
        // the links are derived from the indices *before* this action is
        // added to them.
        debug_assert_eq!(self.partition_parent.len() as ActionId, id);
        self.partition_parent.push(id);
        self.link_action(id, &action);
        for f in &action.loaded_files {
            self.by_file.entry(f.clone()).or_default().push(id);
        }
        if let Some(client) = &action.client {
            self.by_visit
                .entry((client.client_id.clone(), client.visit_id))
                .or_default()
                .push(id);
        }
        self.index_partitions(id, &action);
        self.actions.push(action);
        id
    }

    /// Unions the arriving action with every earlier action the batch
    /// partition rules would link it to, using only the indices (no history
    /// rescan):
    ///
    /// * the previous action of the same page visit (visits form a chain);
    /// * any whole-table writer of a table it touches;
    /// * when it *is* a whole-table write: every earlier toucher of the table;
    /// * a writer of any partition key it reads or writes;
    /// * when it is the *first* writer of a key: that key's earlier readers
    ///   and the table's whole-table readers;
    /// * when it reads a whole table: one writer of each written key.
    ///
    /// Each rule unions with one representative where earlier arrivals
    /// already connected the rest, so for cancellation-free histories the
    /// resulting components are exactly the batch plan's. Cancelled actions
    /// stay in the forest (their links are kept conservatively), which can
    /// only coarsen groups, never split ones the batch plan would join.
    fn link_action(&mut self, id: ActionId, action: &ActionRecord) {
        if let Some(client) = &action.client {
            let key = (client.client_id.clone(), client.visit_id);
            if let Some(prev) = self.by_visit.get(&key).and_then(|ids| ids.last()) {
                pl_union(&mut self.partition_parent, id, *prev);
            }
        }
        for q in &action.queries {
            let (read, write) = normalized_dependency_partitions(&q.dependency);
            if let Some(read) = read {
                self.link_partition_set(id, read, false);
            }
            if let Some(write) = write {
                self.link_partition_set(id, &write, true);
            }
        }
    }

    /// Links one normalized partition set of the arriving action (see
    /// [`HistoryGraph::link_action`] for the rules).
    fn link_partition_set(&mut self, id: ActionId, set: &PartitionSet, as_writer: bool) {
        let parent = &mut self.partition_parent;
        match set {
            PartitionSet::Whole { table } => {
                let Some(index) = self.by_partition.get(table) else {
                    return;
                };
                if as_writer {
                    // A whole-table write conflicts with everything recorded
                    // on the table so far.
                    for other in index
                        .whole_writers
                        .iter()
                        .chain(index.whole_readers.iter())
                        .chain(
                            index
                                .keys
                                .values()
                                .flat_map(|h| h.writers.iter().chain(h.readers.iter())),
                        )
                    {
                        pl_union(parent, id, *other);
                    }
                } else {
                    // A whole-table read joins every written partition (and
                    // any whole-table writer).
                    if let Some(w) = index.whole_writers.last() {
                        pl_union(parent, id, *w);
                    }
                    for hub in index.keys.values() {
                        if let Some(w) = hub.writers.last() {
                            pl_union(parent, id, *w);
                        }
                    }
                }
            }
            PartitionSet::Keys(keys) => {
                for key in keys {
                    let Some(index) = self.by_partition.get(&key.table) else {
                        continue;
                    };
                    // An earlier whole-table write conflicts with any touch.
                    if let Some(w) = index.whole_writers.last() {
                        pl_union(parent, id, *w);
                    }
                    let hub = index.keys.get(&(key.column.clone(), key.value.clone()));
                    let last_writer = hub.and_then(|h| h.writers.last()).copied();
                    match (as_writer, last_writer) {
                        // The key already has a writer: it is connected to
                        // every reader/writer of the key, so one union does.
                        (_, Some(w)) => pl_union(parent, id, w),
                        // First writer of this key: adopt the key's earlier
                        // readers and the table's whole-table readers.
                        (true, None) => {
                            if let Some(h) = hub {
                                for r in &h.readers {
                                    pl_union(parent, id, *r);
                                }
                            }
                            for r in &index.whole_readers {
                                pl_union(parent, id, *r);
                            }
                        }
                        // A read of a never-written key links nothing —
                        // read-sharing is harmless.
                        (false, None) => {}
                    }
                }
            }
        }
    }

    /// The dependency components of the live (non-cancelled) actions,
    /// computed from the incrementally-maintained forest. Each component is
    /// in ascending action-ID order; components are ordered by their
    /// smallest member.
    pub fn partition_components(&self) -> Vec<Vec<ActionId>> {
        let mut parent = self.partition_parent.clone();
        let mut members: BTreeMap<ActionId, Vec<ActionId>> = BTreeMap::new();
        for action in &self.actions {
            if action.cancelled {
                continue;
            }
            let root = pl_find(&mut parent, action.id);
            members.entry(root).or_default().push(action.id);
        }
        let mut components: Vec<Vec<ActionId>> = members.into_values().collect();
        // A component's root can be a cancelled action; order by the
        // smallest *live* member (the first, since IDs were pushed in order).
        components.sort_by_key(|c| c[0]);
        components
    }

    /// Indexes one action's queries into the partition index.
    fn index_partitions(&mut self, id: ActionId, action: &ActionRecord) {
        fn push_dedup(list: &mut Vec<ActionId>, id: ActionId) {
            // IDs are appended in increasing order, so a duplicate from a
            // second query of the same action is always the last element.
            if list.last() != Some(&id) {
                list.push(id);
            }
        }
        let mut add = |set: &PartitionSet, as_writer: bool| match set {
            PartitionSet::Whole { table } => {
                let entry = self.by_partition.entry(table.clone()).or_default();
                let list = if as_writer {
                    &mut entry.whole_writers
                } else {
                    &mut entry.whole_readers
                };
                push_dedup(list, id);
            }
            PartitionSet::Keys(keys) => {
                for key in keys {
                    let entry = self.by_partition.entry(key.table.clone()).or_default();
                    let hub = entry
                        .keys
                        .entry((key.column.clone(), key.value.clone()))
                        .or_default();
                    let list = if as_writer {
                        &mut hub.writers
                    } else {
                        &mut hub.readers
                    };
                    push_dedup(list, id);
                }
            }
        };
        for q in &action.queries {
            let (read, write) = normalized_dependency_partitions(&q.dependency);
            if let Some(read) = read {
                add(read, false);
            }
            if let Some(write) = write {
                add(&write, true);
            }
        }
    }

    /// The partition index (table → readers/writers per partition).
    pub fn partition_index(&self) -> &BTreeMap<String, TablePartitionIndex> {
        &self.by_partition
    }

    /// The action groups caused by page visits, one slice per known
    /// `(client, visit)` pair. Actions of one page visit must be repaired
    /// together (browser replay cancels and re-issues across the visit).
    pub fn visit_action_groups(&self) -> Vec<&[ActionId]> {
        self.by_visit.values().map(|ids| ids.as_slice()).collect()
    }

    /// Returns an action by ID.
    pub fn action(&self, id: ActionId) -> Option<&ActionRecord> {
        self.actions.get(id as usize)
    }

    /// Mutable access to an action (used to mark cancellation).
    pub fn action_mut(&mut self, id: ActionId) -> Option<&mut ActionRecord> {
        self.actions.get_mut(id as usize)
    }

    /// All actions, in execution order.
    pub fn actions(&self) -> &[ActionRecord] {
        &self.actions
    }

    /// Actions that loaded the given source file at or after `from_time`
    /// (the candidates for retroactive patching, §3.2).
    pub fn actions_loading_file(&self, filename: &str, from_time: i64) -> Vec<ActionId> {
        self.by_file
            .get(filename)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        self.actions
                            .get(id as usize)
                            .map(|a| a.time >= from_time && !a.cancelled)
                            .unwrap_or(false)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Actions caused by a given page visit.
    pub fn actions_for_visit(&self, client_id: &str, visit_id: u64) -> Vec<ActionId> {
        self.by_visit
            .get(&(client_id.to_string(), visit_id))
            .cloned()
            .unwrap_or_default()
    }

    /// The action that served a specific request of a page visit.
    pub fn action_for_request(
        &self,
        client_id: &str,
        visit_id: u64,
        request_id: u64,
    ) -> Option<ActionId> {
        self.actions_for_visit(client_id, visit_id)
            .into_iter()
            .find(|&id| {
                self.actions[id as usize]
                    .client
                    .as_ref()
                    .map(|c| c.request_id == request_id)
                    .unwrap_or(false)
            })
    }

    /// Stores a client-uploaded page-visit record, enforcing the per-client
    /// quota (oldest visits are dropped first).
    pub fn upload_client_log(&mut self, record: PageVisitRecord) {
        let per_client = self
            .client_logs
            .entry(record.client_id.clone())
            .or_default();
        per_client.insert(record.visit_id, record);
        let quota = self.client_log_quota_bytes;
        loop {
            let total: usize = per_client.values().map(|r| r.approximate_bytes()).sum();
            if total <= quota || per_client.len() <= 1 {
                break;
            }
            let oldest = *per_client.keys().next().expect("non-empty");
            per_client.remove(&oldest);
        }
    }

    /// The uploaded browser log for a page visit, if the client uploaded one.
    pub fn client_log(&self, client_id: &str, visit_id: u64) -> Option<&PageVisitRecord> {
        self.client_logs
            .get(client_id)
            .and_then(|m| m.get(&visit_id))
    }

    /// All page visits recorded for a client, in visit order.
    pub fn client_visits(&self, client_id: &str) -> Vec<&PageVisitRecord> {
        self.client_logs
            .get(client_id)
            .map(|m| m.values().collect())
            .unwrap_or_default()
    }

    /// Clients that have uploaded logs.
    pub fn client_ids(&self) -> Vec<String> {
        self.client_logs.keys().cloned().collect()
    }

    /// Storage accounting across the whole log (Table 6).
    pub fn logging_stats(&self) -> LoggingStats {
        let page_visits = self
            .actions
            .iter()
            .filter_map(|a| a.client.as_ref().map(|c| (c.client_id.clone(), c.visit_id)))
            .collect::<BTreeSet<_>>()
            .len()
            .max(self.actions.len().min(1));
        let mut stats = LoggingStats {
            page_visits,
            ..LoggingStats::default()
        };
        for a in &self.actions {
            stats.app_bytes += a.approximate_app_bytes();
            stats.db_bytes += a.approximate_db_bytes();
        }
        for per_client in self.client_logs.values() {
            for rec in per_client.values() {
                stats.browser_bytes += rec.approximate_bytes();
            }
        }
        stats.actions = self.actions.len();
        stats
    }

    /// Garbage-collects actions older than `before_time` (in sync with the
    /// time-travel database's version GC). Returns how many were removed.
    pub fn garbage_collect(&mut self, before_time: i64) -> usize {
        let keep: Vec<ActionRecord> = self
            .actions
            .iter()
            .filter(|a| a.time >= before_time)
            .cloned()
            .collect();
        let removed = self.actions.len() - keep.len();
        if removed == 0 {
            return 0;
        }
        // Rebuild with fresh IDs and indices.
        let logs = std::mem::take(&mut self.client_logs);
        let quota = self.client_log_quota_bytes;
        *self = HistoryGraph {
            client_log_quota_bytes: quota,
            ..Default::default()
        };
        self.client_logs = logs;
        for mut a in keep {
            a.id = 0;
            self.record_action(a);
        }
        removed
    }
}

/// Finds the root of `i` in the partition forest, with path compression.
fn pl_find(parent: &mut [ActionId], i: ActionId) -> ActionId {
    let mut root = i;
    while parent[root as usize] != root {
        root = parent[root as usize];
    }
    let mut cur = i;
    while parent[cur as usize] != root {
        let next = parent[cur as usize];
        parent[cur as usize] = root;
        cur = next;
    }
    root
}

/// Unions two sets in the partition forest; the smaller ID becomes the
/// representative, which keeps component numbering deterministic.
fn pl_union(parent: &mut [ActionId], a: ActionId, b: ActionId) {
    let (ra, rb) = (pl_find(parent, a), pl_find(parent, b));
    if ra == rb {
        return;
    }
    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
    parent[hi as usize] = lo;
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_ttdb::PartitionSet;

    fn action(time: i64, files: &[&str], client: Option<(&str, u64, u64)>) -> ActionRecord {
        ActionRecord {
            id: 0,
            time,
            request: HttpRequest::get("/index.wasl"),
            response: HttpResponse::ok("x"),
            client: client.map(|(c, v, r)| ClientRef {
                client_id: c.to_string(),
                visit_id: v,
                request_id: r,
            }),
            entry_script: files.first().unwrap_or(&"index.wasl").to_string(),
            loaded_files: files.iter().map(|s| s.to_string()).collect(),
            queries: vec![QueryRecord {
                sql: "SELECT 1 FROM page".into(),
                time,
                result_fingerprint: 1,
                is_write: false,
                written_row_ids: vec![],
                dependency: QueryDependency::read("page", PartitionSet::whole("page")),
            }],
            nondet: vec![],
            cancelled: false,
        }
    }

    #[test]
    fn record_and_index_by_file() {
        let mut g = HistoryGraph::new();
        let a = g.record_action(action(10, &["edit.wasl", "common.wasl"], None));
        let b = g.record_action(action(20, &["view.wasl", "common.wasl"], None));
        assert_eq!(g.len(), 2);
        assert_eq!(g.actions_loading_file("edit.wasl", 0), vec![a]);
        assert_eq!(g.actions_loading_file("common.wasl", 0), vec![a, b]);
        assert_eq!(g.actions_loading_file("common.wasl", 15), vec![b]);
        assert!(g.actions_loading_file("missing.wasl", 0).is_empty());
    }

    #[test]
    fn cancelled_actions_are_not_candidates() {
        let mut g = HistoryGraph::new();
        let a = g.record_action(action(10, &["edit.wasl"], None));
        g.action_mut(a).unwrap().cancelled = true;
        assert!(g.actions_loading_file("edit.wasl", 0).is_empty());
    }

    #[test]
    fn index_by_visit_and_request() {
        let mut g = HistoryGraph::new();
        let a = g.record_action(action(10, &["view.wasl"], Some(("client-1", 3, 0))));
        let b = g.record_action(action(11, &["edit.wasl"], Some(("client-1", 3, 1))));
        let _c = g.record_action(action(12, &["view.wasl"], Some(("client-2", 1, 0))));
        assert_eq!(g.actions_for_visit("client-1", 3), vec![a, b]);
        assert_eq!(g.action_for_request("client-1", 3, 1), Some(b));
        assert_eq!(g.action_for_request("client-1", 3, 9), None);
    }

    #[test]
    fn client_log_quota_drops_oldest_visits() {
        let mut g = HistoryGraph::new();
        g.client_log_quota_bytes = 400;
        for visit in 0..20u64 {
            let mut rec = PageVisitRecord::new("c1", visit, "/view.wasl");
            rec.push_event(
                warp_browser::EventKind::Input,
                "body",
                Some("x".repeat(50)),
                Some(String::new()),
            );
            g.upload_client_log(rec);
        }
        let visits = g.client_visits("c1");
        assert!(visits.len() < 20, "quota should have evicted old visits");
        // The newest visit is retained.
        assert!(g.client_log("c1", 19).is_some());
        assert!(g.client_log("c1", 0).is_none());
        // Another client is unaffected by c1's quota.
        g.upload_client_log(PageVisitRecord::new("c2", 1, "/x"));
        assert!(g.client_log("c2", 1).is_some());
    }

    #[test]
    fn logging_stats_accumulate() {
        let mut g = HistoryGraph::new();
        g.record_action(action(10, &["view.wasl"], Some(("c", 1, 0))));
        g.upload_client_log(PageVisitRecord::new("c", 1, "/view.wasl"));
        let stats = g.logging_stats();
        assert_eq!(stats.actions, 1);
        assert!(stats.app_bytes > 0);
        assert!(stats.db_bytes > 0);
        assert!(stats.browser_bytes > 0);
    }

    fn action_with_dep(time: i64, dep: QueryDependency) -> ActionRecord {
        let mut a = action(time, &["x.wasl"], None);
        a.queries = vec![QueryRecord {
            sql: "...".into(),
            time,
            result_fingerprint: 0,
            is_write: dep.is_write,
            written_row_ids: dep.written_row_ids.clone(),
            dependency: dep,
        }];
        a
    }

    fn keys(table: &str, col: &str, v: &str) -> PartitionSet {
        PartitionSet::Keys(
            [warp_ttdb::PartitionKey::new(
                table,
                col,
                &warp_sql::Value::text(v),
            )]
            .into_iter()
            .collect(),
        )
    }

    #[test]
    fn incremental_components_link_writers_readers_and_scans() {
        let mut g = HistoryGraph::new();
        // 0: write t0 · 1: read t0 · 2: read t1 · 3: write t2
        g.record_action(action_with_dep(
            1,
            QueryDependency::write(
                "note",
                keys("note", "topic", "t0"),
                keys("note", "topic", "t0"),
                vec![warp_sql::Value::Int(1)],
            ),
        ));
        g.record_action(action_with_dep(
            2,
            QueryDependency::read("note", keys("note", "topic", "t0")),
        ));
        g.record_action(action_with_dep(
            3,
            QueryDependency::read("note", keys("note", "topic", "t1")),
        ));
        g.record_action(action_with_dep(
            4,
            QueryDependency::write(
                "note",
                keys("note", "topic", "t2"),
                keys("note", "topic", "t2"),
                vec![warp_sql::Value::Int(2)],
            ),
        ));
        assert_eq!(g.partition_components(), vec![vec![0, 1], vec![2], vec![3]]);
        // 4: a whole-table read joins every written partition.
        g.record_action(action_with_dep(
            5,
            QueryDependency::read("note", PartitionSet::whole("note")),
        ));
        assert_eq!(g.partition_components(), vec![vec![0, 1, 3, 4], vec![2]]);
    }

    #[test]
    fn cancelled_actions_leave_components_but_keep_links() {
        let mut g = HistoryGraph::new();
        let w = g.record_action(action_with_dep(
            1,
            QueryDependency::write(
                "note",
                keys("note", "topic", "t0"),
                keys("note", "topic", "t0"),
                vec![warp_sql::Value::Int(1)],
            ),
        ));
        g.record_action(action_with_dep(
            2,
            QueryDependency::read("note", keys("note", "topic", "t0")),
        ));
        g.record_action(action_with_dep(
            3,
            QueryDependency::read("note", keys("note", "topic", "t0")),
        ));
        g.action_mut(w).unwrap().cancelled = true;
        // The cancelled writer is dropped from the emitted components, but
        // the readers it connected stay together (conservative coarsening).
        assert_eq!(g.partition_components(), vec![vec![1, 2]]);
    }

    #[test]
    fn union_by_smallest_id_keeps_roots_deterministic() {
        let mut parent: Vec<ActionId> = (0..5).collect();
        pl_union(&mut parent, 4, 2);
        pl_union(&mut parent, 2, 3);
        assert_eq!(pl_find(&mut parent, 4), 2);
        assert_eq!(pl_find(&mut parent, 3), 2);
        assert_eq!(pl_find(&mut parent, 0), 0);
    }

    #[test]
    fn garbage_collect_drops_old_actions_and_reindexes() {
        let mut g = HistoryGraph::new();
        g.record_action(action(10, &["a.wasl"], None));
        g.record_action(action(20, &["a.wasl"], None));
        g.record_action(action(30, &["b.wasl"], None));
        let removed = g.garbage_collect(15);
        assert_eq!(removed, 1);
        assert_eq!(g.len(), 2);
        assert_eq!(g.actions_loading_file("a.wasl", 0).len(), 1);
        assert_eq!(g.actions_loading_file("b.wasl", 0).len(), 1);
    }
}
