//! Static shard routing for the partition-sharded serving engine.
//!
//! The sharded engine (see [`crate::Warp`] and `facade.rs`) runs
//! non-conflicting requests on N shard workers concurrently. For that to be
//! safe, the engine must know — *before* executing a request — which
//! database partitions the request can possibly touch. This module derives
//! that answer statically from the application source:
//!
//! 1. [`plan_entry`] parses the entry script (and every literally-named
//!    include, transitively) into the WASL AST, rejects anything
//!    non-deterministic (`time`, `rand`, `session_start`), and extracts
//!    every `db_query` call site whose SQL argument is a concatenation of
//!    string literals and *sanitized request holes* —
//!    `sql_escape(param("x"))` in string position or `int(param("x"))` in
//!    integer position.
//! 2. Each template is instantiated with sentinel values, parsed with
//!    `warp-sql`, and analyzed against the table annotations
//!    ([`ShardSchema`]): reads must pin their partition columns, writes must
//!    additionally be partition-clone-safe, never move rows across
//!    partitions, and always supply an explicit row ID.
//! 3. At serve time, [`classify`] substitutes the request's actual
//!    parameters into the surviving bindings, producing the set of
//!    [`PartitionKey`]s the request can touch. If they all hash to one shard
//!    ([`PartitionKey::shard`]) the request runs there; otherwise it
//!    escalates to the serialized global lane.
//!
//! Every rejection is conservative: an imprecise footprint never routes to
//! a shard, it escalates. The canonical-dump equivalence tests in
//! `tests/tests/serving.rs` hold the whole pipeline to byte-identical
//! results against sequential serving.

use crate::sourcefs::SourceStore;
use std::collections::{BTreeMap, BTreeSet};
use warp_http::HttpRequest;
use warp_script::{BinOp, Expr as WaslExpr, Stmt as WaslStmt, Value as WaslValue};
use warp_sql::{Statement, Value as SqlValue};
use warp_ttdb::rewrite::read_partitions;
use warp_ttdb::{PartitionKey, PartitionSet, TimeTravelDb};

/// Static, per-table metadata the router needs, snapshotted from the live
/// database at an epoch boundary (the database itself is checked out to the
/// shard workers while an epoch runs).
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardSchema {
    tables: BTreeMap<String, TableShardInfo>,
}

#[derive(Debug, Clone)]
struct TableShardInfo {
    partition_columns: Vec<String>,
    row_id_column: Option<String>,
    clone_safe: bool,
}

impl ShardSchema {
    /// Captures the routing-relevant schema of every table.
    pub(crate) fn capture(db: &TimeTravelDb) -> Self {
        let mut tables = BTreeMap::new();
        for name in db.table_names() {
            tables.insert(
                name.to_ascii_lowercase(),
                TableShardInfo {
                    partition_columns: db.partition_columns(&name).to_vec(),
                    row_id_column: db.row_id_column(&name).map(|c| c.to_string()),
                    clone_safe: db.partition_clone_safe(&name),
                },
            );
        }
        ShardSchema { tables }
    }
}

/// How one partition-column value of a query is produced.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BindingValue {
    /// A value fixed in the source text.
    Fixed(String),
    /// The raw string value of a request parameter (`sql_escape(param(p))`
    /// round-trips the parameter through SQL quoting back to itself).
    StrParam(String),
    /// A request parameter interpreted as an integer (`int(param(p))`).
    IntParam(String),
}

/// One partition-column constraint a request's query pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Binding {
    table: String,
    column: String,
    value: BindingValue,
}

/// The routing decision for one entry script, computed once per epoch and
/// cached by the engine.
#[derive(Debug, Clone)]
pub(crate) enum RoutePlan {
    /// Every query the entry can issue resolves to partitions derivable
    /// from source literals and request parameters.
    Shardable { bindings: Vec<Binding> },
    /// The entry must run on the serialized global lane; the string names
    /// the first reason found (for diagnostics and tests).
    Global(String),
}

impl RoutePlan {
    /// Why the entry escalates to the global lane, if it does. Production
    /// code never branches on the reason (escalation is escalation); it
    /// exists for tests and debugging.
    #[allow(dead_code)]
    pub(crate) fn global_reason(&self) -> Option<&str> {
        match self {
            RoutePlan::Global(reason) => Some(reason),
            RoutePlan::Shardable { .. } => None,
        }
    }
}

/// The routing decision for one concrete request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    /// All partition keys hash to this shard.
    Shard(usize),
    /// The request touches no partitions at all (static pages, reads of
    /// unpartitioned tables); any shard may run it.
    Any,
    /// Escalate to the serialized global lane.
    Global,
}

/// Host functions whose results vary between runs: any call forces the
/// global lane, so shard workers never need the nondeterminism counters.
const NONDET_FUNCS: [&str; 3] = ["time", "rand", "session_start"];

/// Builds the route plan for `entry` by static analysis of its source (as
/// visible to normal execution at time `now`) against `schema`.
pub(crate) fn plan_entry(
    entry: &str,
    sources: &SourceStore,
    now: i64,
    schema: &ShardSchema,
) -> RoutePlan {
    let mut templates = Vec::new();
    let mut visited = BTreeSet::new();
    if let Err(reason) = collect_file(entry, sources, now, &mut visited, &mut templates) {
        return RoutePlan::Global(reason);
    }
    let mut bindings = Vec::new();
    for template in &templates {
        match analyze_template(template, schema) {
            Ok(b) => bindings.extend(b),
            Err(reason) => return RoutePlan::Global(reason),
        }
    }
    RoutePlan::Shardable { bindings }
}

/// Classifies one request under a previously-computed plan.
pub(crate) fn classify(plan: &RoutePlan, request: &HttpRequest, shards: usize) -> Route {
    let bindings = match plan {
        RoutePlan::Global(_) => return Route::Global,
        RoutePlan::Shardable { bindings } => bindings,
    };
    let mut owner: Option<usize> = None;
    for binding in bindings {
        let value = match &binding.value {
            BindingValue::Fixed(v) => SqlValue::Text(v.clone()),
            BindingValue::StrParam(p) => match request.param(p) {
                Some(raw) => SqlValue::Text(raw.to_string()),
                None => return Route::Global,
            },
            BindingValue::IntParam(p) => {
                match request.param(p).and_then(|raw| raw.parse::<i64>().ok()) {
                    Some(n) => SqlValue::Int(n),
                    None => return Route::Global,
                }
            }
        };
        let key = PartitionKey::new(&binding.table, &binding.column, &value);
        let shard = key.shard(shards);
        match owner {
            None => owner = Some(shard),
            Some(existing) if existing == shard => {}
            Some(_) => return Route::Global,
        }
    }
    match owner {
        Some(shard) => Route::Shard(shard),
        None => Route::Any,
    }
}

// ---------------------------------------------------------------------------
// Source analysis
// ---------------------------------------------------------------------------

/// The kind of value a request hole injects into the SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HoleKind {
    EscapedStr,
    Int,
}

#[derive(Debug, Clone)]
struct Hole {
    param: String,
    kind: HoleKind,
}

/// One `db_query` call site: literal SQL fragments interleaved with request
/// holes (`fragments.len() == holes.len() + 1`).
#[derive(Debug, Clone)]
struct QueryTemplate {
    fragments: Vec<String>,
    holes: Vec<Hole>,
}

/// Parses `filename` and every literal include (transitively), collecting
/// query templates; any non-analyzable construct aborts with a reason.
fn collect_file(
    filename: &str,
    sources: &SourceStore,
    now: i64,
    visited: &mut BTreeSet<String>,
    templates: &mut Vec<QueryTemplate>,
) -> Result<(), String> {
    if !visited.insert(filename.to_string()) {
        return Ok(());
    }
    let Some(content) = sources.content_for_normal_execution(filename, now) else {
        return Err(format!("missing source: {filename}"));
    };
    let program = warp_script::parse_program(&content)
        .map_err(|e| format!("unparseable source {filename}: {e}"))?;
    let mut includes = Vec::new();
    collect_stmts(&program.statements, &mut includes, templates)?;
    for include in includes {
        collect_file(&include, sources, now, visited, templates)?;
    }
    Ok(())
}

fn collect_stmts(
    stmts: &[WaslStmt],
    includes: &mut Vec<String>,
    templates: &mut Vec<QueryTemplate>,
) -> Result<(), String> {
    for stmt in stmts {
        match stmt {
            WaslStmt::Let { value, .. } | WaslStmt::Expr(value) => {
                collect_expr(value, templates)?;
            }
            WaslStmt::Assign { target, value } => {
                if let warp_script::ast::AssignTarget::Index { indexes, .. } = target {
                    for index in indexes {
                        collect_expr(index, templates)?;
                    }
                }
                collect_expr(value, templates)?;
            }
            WaslStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                collect_expr(cond, templates)?;
                collect_stmts(then_branch, includes, templates)?;
                collect_stmts(else_branch, includes, templates)?;
            }
            WaslStmt::While { cond, body } => {
                collect_expr(cond, templates)?;
                collect_stmts(body, includes, templates)?;
            }
            WaslStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                collect_stmts(std::slice::from_ref(init), includes, templates)?;
                collect_expr(cond, templates)?;
                collect_stmts(std::slice::from_ref(step), includes, templates)?;
                collect_stmts(body, includes, templates)?;
            }
            WaslStmt::Foreach {
                collection, body, ..
            } => {
                collect_expr(collection, templates)?;
                collect_stmts(body, includes, templates)?;
            }
            WaslStmt::Return(Some(value)) => collect_expr(value, templates)?,
            WaslStmt::Return(None) | WaslStmt::Break | WaslStmt::Continue => {}
            WaslStmt::Include(expr) => match expr {
                WaslExpr::Literal(WaslValue::Str(file)) => includes.push(file.clone()),
                _ => return Err("non-literal include path".to_string()),
            },
            WaslStmt::FnDef(def) => collect_stmts(&def.body, includes, templates)?,
        }
    }
    Ok(())
}

/// Visits one expression tree: rejects nondeterminism, extracts `db_query`
/// templates, and recurses into every operand.
fn collect_expr(expr: &WaslExpr, templates: &mut Vec<QueryTemplate>) -> Result<(), String> {
    match expr {
        WaslExpr::Call { name, args } => {
            if NONDET_FUNCS.contains(&name.as_str()) {
                return Err(format!("nondeterministic call: {name}()"));
            }
            if name == "db_query" {
                let Some(arg) = args.first() else {
                    return Err("db_query with no argument".to_string());
                };
                let Some(template) = template_of(arg) else {
                    return Err("db_query argument is not a literal/param template".to_string());
                };
                templates.push(template);
                return Ok(());
            }
            for arg in args {
                collect_expr(arg, templates)?;
            }
        }
        WaslExpr::Binary { left, right, .. } => {
            collect_expr(left, templates)?;
            collect_expr(right, templates)?;
        }
        WaslExpr::Unary { operand, .. } => collect_expr(operand, templates)?,
        WaslExpr::Index { base, index } => {
            collect_expr(base, templates)?;
            collect_expr(index, templates)?;
        }
        WaslExpr::ArrayLit(items) => {
            for item in items {
                collect_expr(item, templates)?;
            }
        }
        WaslExpr::MapLit(pairs) => {
            for (k, v) in pairs {
                collect_expr(k, templates)?;
                collect_expr(v, templates)?;
            }
        }
        WaslExpr::Literal(_) | WaslExpr::Var(_) => {}
    }
    Ok(())
}

/// Decomposes a `db_query` SQL argument into a template, if it is a concat
/// chain of string/int literals and sanitized request holes.
fn template_of(expr: &WaslExpr) -> Option<QueryTemplate> {
    let mut leaves = Vec::new();
    flatten_concat(expr, &mut leaves);
    let mut fragments = vec![String::new()];
    let mut holes = Vec::new();
    for leaf in leaves {
        match leaf {
            WaslExpr::Literal(WaslValue::Str(s)) => {
                fragments.last_mut().expect("non-empty").push_str(s);
            }
            WaslExpr::Literal(WaslValue::Int(i)) => {
                fragments
                    .last_mut()
                    .expect("non-empty")
                    .push_str(&i.to_string());
            }
            WaslExpr::Call { name, args } if name == "sql_escape" || name == "int" => {
                let param = param_name(args)?;
                holes.push(Hole {
                    param,
                    kind: if name == "sql_escape" {
                        HoleKind::EscapedStr
                    } else {
                        HoleKind::Int
                    },
                });
                fragments.push(String::new());
            }
            _ => return None,
        }
    }
    Some(QueryTemplate { fragments, holes })
}

fn flatten_concat<'e>(expr: &'e WaslExpr, out: &mut Vec<&'e WaslExpr>) {
    if let WaslExpr::Binary {
        left,
        op: BinOp::Concat,
        right,
    } = expr
    {
        flatten_concat(left, out);
        flatten_concat(right, out);
    } else {
        out.push(expr);
    }
}

/// Matches the `param("name")` call inside a sanitizer hole.
fn param_name(args: &[WaslExpr]) -> Option<String> {
    match args {
        [WaslExpr::Call { name, args }] if name == "param" => match args.as_slice() {
            [WaslExpr::Literal(WaslValue::Str(p))] => Some(p.clone()),
            _ => None,
        },
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Template analysis
// ---------------------------------------------------------------------------

/// Sentinel values are chosen to be impossible in real data and to survive
/// both `sql_escape` (no quotes) and SQL parsing unchanged.
fn str_sentinel(i: usize) -> String {
    format!("WARPSHARDSENTINEL{i}Q")
}

const INT_SENTINEL_BASE: i64 = 8_878_000_000_000;

fn int_sentinel(i: usize) -> i64 {
    INT_SENTINEL_BASE + i as i64
}

/// Renders the template with sentinels standing in for the request holes.
fn render_with_sentinels(template: &QueryTemplate) -> String {
    let mut sql = template.fragments[0].clone();
    for (i, hole) in template.holes.iter().enumerate() {
        match hole.kind {
            HoleKind::EscapedStr => sql.push_str(&str_sentinel(i)),
            HoleKind::Int => sql.push_str(&int_sentinel(i).to_string()),
        }
        sql.push_str(&template.fragments[i + 1]);
    }
    sql
}

/// Analyzes one template against the schema; returns the partition bindings
/// the query pins, or the reason it cannot run on a shard.
fn analyze_template(
    template: &QueryTemplate,
    schema: &ShardSchema,
) -> Result<Vec<Binding>, String> {
    let rendered = render_with_sentinels(template);
    let stmt =
        warp_sql::parse(&rendered).map_err(|e| format!("unparseable query template: {e}"))?;
    let Some(table) = stmt.table_name() else {
        return Err("query without a table".to_string());
    };
    let table = table.to_ascii_lowercase();
    let Some(info) = schema.tables.get(&table) else {
        return Err(format!("unknown table: {table}"));
    };
    // Maps a pinned partition value back to the hole that produced it.
    let resolve = |value: &str| -> BindingValue {
        for (i, hole) in template.holes.iter().enumerate() {
            let is_sentinel = match hole.kind {
                HoleKind::EscapedStr => value == str_sentinel(i),
                HoleKind::Int => value == int_sentinel(i).to_string(),
            };
            if is_sentinel {
                return match hole.kind {
                    HoleKind::EscapedStr => BindingValue::StrParam(hole.param.clone()),
                    HoleKind::Int => BindingValue::IntParam(hole.param.clone()),
                };
            }
        }
        BindingValue::Fixed(value.to_string())
    };
    let where_bindings = |stmt: &Statement| -> Result<Vec<Binding>, String> {
        match read_partitions(stmt, &table, &info.partition_columns) {
            PartitionSet::Keys(keys) => Ok(keys
                .iter()
                .map(|key| Binding {
                    table: key.table.clone(),
                    column: key.column.clone(),
                    value: resolve(&key.value),
                })
                .collect()),
            PartitionSet::Whole { .. } => {
                Err(format!("query does not pin a partition column of {table}"))
            }
        }
    };
    match &stmt {
        Statement::Select(_) => {
            if info.partition_columns.is_empty() {
                // Reads of unpartitioned tables are safe on any shard: every
                // write to such a table escalates to the global lane, so no
                // shard can observe a concurrent in-flight write.
                Ok(Vec::new())
            } else {
                where_bindings(&stmt)
            }
        }
        Statement::Update {
            assignments, table, ..
        } => {
            require_write_safe(info, table)?;
            for assignment in assignments {
                let col = assignment.column.to_ascii_lowercase();
                if info
                    .partition_columns
                    .iter()
                    .any(|p| p.eq_ignore_ascii_case(&col))
                {
                    return Err(format!("UPDATE moves rows across partitions of {table}"));
                }
                if info
                    .row_id_column
                    .as_deref()
                    .is_some_and(|r| r.eq_ignore_ascii_case(&col))
                {
                    return Err(format!("UPDATE rewrites the row id of {table}"));
                }
            }
            where_bindings(&stmt)
        }
        Statement::Delete { table, .. } => {
            require_write_safe(info, table)?;
            where_bindings(&stmt)
        }
        Statement::Insert {
            table,
            columns,
            values,
        } => {
            require_write_safe(info, table)?;
            let position = |col: &str| columns.iter().position(|c| c.eq_ignore_ascii_case(col));
            let Some(row_id) = info.row_id_column.as_deref() else {
                return Err(format!("table {table} has no row id column"));
            };
            let Some(row_id_pos) = position(row_id) else {
                return Err(format!(
                    "INSERT into {table} without an explicit row id (synthetic ids serialize)"
                ));
            };
            let mut bindings = Vec::new();
            for row in values {
                match row.get(row_id_pos) {
                    Some(warp_sql::Expr::Literal(v)) if *v != SqlValue::Null => {}
                    _ => {
                        return Err(format!("INSERT into {table} with a non-literal row id"));
                    }
                }
                for pcol in &info.partition_columns {
                    let Some(pos) = position(pcol) else {
                        return Err(format!(
                            "INSERT into {table} does not set partition column {pcol}"
                        ));
                    };
                    match row.get(pos) {
                        Some(warp_sql::Expr::Literal(v)) => bindings.push(Binding {
                            table: table.to_ascii_lowercase(),
                            column: pcol.to_ascii_lowercase(),
                            value: resolve(&v.as_display_string()),
                        }),
                        _ => {
                            return Err(format!(
                                "INSERT into {table} with a non-literal partition value"
                            ));
                        }
                    }
                }
            }
            Ok(bindings)
        }
        Statement::CreateTable { .. }
        | Statement::DropTable { .. }
        | Statement::AlterTableAddColumn { .. } => Err("DDL statement".to_string()),
    }
}

/// Writes may run on a shard only against partitioned, clone-safe tables
/// (every UNIQUE constraint includes a partition column, so uniqueness
/// violations can only happen within one shard's partitions).
fn require_write_safe(info: &TableShardInfo, table: &str) -> Result<(), String> {
    if info.partition_columns.is_empty() {
        return Err(format!("write to unpartitioned table {table}"));
    }
    if !info.clone_safe {
        return Err(format!(
            "table {table} has a unique constraint outside its partition columns"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_ttdb::TableAnnotation;

    fn schema() -> ShardSchema {
        let mut db = TimeTravelDb::new();
        // The canonical wiki schema: page_id's PRIMARY KEY does not include
        // the partition column, so writes are NOT clone-safe (two shards
        // could race a page_id collision) — reads still shard.
        db.create_table(
            "CREATE TABLE page (page_id INTEGER PRIMARY KEY, title TEXT UNIQUE, body TEXT)",
            TableAnnotation::new()
                .row_id("page_id")
                .partitions(["title"]),
        )
        .unwrap();
        // No unique constraints at all → vacuously clone-safe; the natural
        // row id keeps the synthetic-id watermark untouched.
        db.create_table(
            "CREATE TABLE note (note_id INTEGER, topic TEXT, body TEXT)",
            TableAnnotation::new()
                .row_id("note_id")
                .partitions(["topic"]),
        )
        .unwrap();
        db.create_table(
            "CREATE TABLE settings (key_id INTEGER PRIMARY KEY, name TEXT, value TEXT)",
            TableAnnotation::new().row_id("key_id"),
        )
        .unwrap();
        ShardSchema::capture(&db)
    }

    fn sources_with(entry: &str, content: &str) -> SourceStore {
        let mut sources = SourceStore::new();
        sources.install(entry, content);
        sources
    }

    fn plan(content: &str) -> RoutePlan {
        plan_entry("x.wasl", &sources_with("x.wasl", content), 10, &schema())
    }

    #[test]
    fn pinned_read_routes_by_param() {
        let plan = plan(
            "let rows = db_query(\"SELECT body FROM page WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); echo(len(rows));",
        );
        let RoutePlan::Shardable { bindings } = &plan else {
            panic!("expected shardable, got {plan:?}");
        };
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0].column, "title");
        assert_eq!(
            bindings[0].value,
            BindingValue::StrParam("title".to_string())
        );
        let request = HttpRequest::get("/x.wasl?title=Main");
        let expected = PartitionKey::new("page", "title", &SqlValue::text("Main")).shard(4);
        assert_eq!(classify(&plan, &request, 4), Route::Shard(expected));
        // Missing parameter escalates.
        assert_eq!(
            classify(&plan, &HttpRequest::get("/x.wasl"), 4),
            Route::Global
        );
    }

    #[test]
    fn unpinned_read_escalates() {
        let p = plan("let rows = db_query(\"SELECT body FROM page\"); echo(len(rows));");
        let reason = p.global_reason().expect("escalates");
        assert!(
            reason.contains("does not pin"),
            "unexpected reason: {reason}"
        );
    }

    #[test]
    fn read_of_unpartitioned_table_runs_anywhere() {
        let p = plan("let rows = db_query(\"SELECT value FROM settings\"); echo(len(rows));");
        assert!(matches!(p, RoutePlan::Shardable { ref bindings } if bindings.is_empty()));
        assert_eq!(classify(&p, &HttpRequest::get("/x.wasl"), 4), Route::Any);
    }

    #[test]
    fn write_to_unpartitioned_table_escalates() {
        let p = plan("db_query(\"UPDATE settings SET value = 'x' WHERE name = 'theme'\");");
        assert!(matches!(p, RoutePlan::Global(_)));
    }

    #[test]
    fn nondeterminism_escalates() {
        for src in [
            "echo(time());",
            "echo(rand());",
            "echo(session_start());",
            "fn helper() { return rand(); } echo(\"static\");",
        ] {
            let p = plan(src);
            assert!(matches!(p, RoutePlan::Global(_)), "{src} should escalate");
        }
    }

    #[test]
    fn write_to_non_clone_safe_table_escalates() {
        // page's PRIMARY KEY (page_id) is outside its partition column, so
        // cross-shard writes could race a uniqueness collision.
        let p = plan(
            "db_query(\"UPDATE page SET body = 'x' WHERE title = '\" . sql_escape(param(\"title\")) . \"'\");",
        );
        assert!(matches!(p, RoutePlan::Global(_)), "got {p:?}");
    }

    #[test]
    fn update_pinned_to_one_partition_is_shardable() {
        let p = plan(
            "db_query(\"UPDATE note SET body = '\" . sql_escape(param(\"body\")) . \"' WHERE topic = '\" . sql_escape(param(\"topic\")) . \"'\");",
        );
        let RoutePlan::Shardable { bindings } = &p else {
            panic!("expected shardable, got {p:?}");
        };
        assert_eq!(bindings.len(), 1);
        // The body hole is not a partition column, so only topic binds.
        assert_eq!(
            bindings[0].value,
            BindingValue::StrParam("topic".to_string())
        );
    }

    #[test]
    fn update_that_moves_partitions_escalates() {
        let p = plan(
            "db_query(\"UPDATE note SET topic = '\" . sql_escape(param(\"new\")) . \"' WHERE topic = '\" . sql_escape(param(\"old\")) . \"'\");",
        );
        assert!(matches!(p, RoutePlan::Global(_)));
    }

    #[test]
    fn insert_with_explicit_ids_binds_partition_values() {
        let p = plan(
            "db_query(\"INSERT INTO note (note_id, topic, body) VALUES (\" . int(param(\"id\")) . \", '\" . sql_escape(param(\"topic\")) . \"', 'x')\");",
        );
        let RoutePlan::Shardable { bindings } = &p else {
            panic!("expected shardable, got {p:?}");
        };
        assert_eq!(bindings.len(), 1);
        assert_eq!(
            bindings[0].value,
            BindingValue::StrParam("topic".to_string())
        );
        // The id hole is not a partition key, so it never constrains the
        // route — even a malformed id is fine (`int()` coerces it to 0
        // deterministically). Only the topic decides the shard.
        let expected = PartitionKey::new("note", "topic", &SqlValue::text("news")).shard(4);
        for target in ["/x.wasl?id=7&topic=news", "/x.wasl?id=abc&topic=news"] {
            assert_eq!(
                classify(&p, &HttpRequest::get(target), 4),
                Route::Shard(expected)
            );
        }
        // A missing topic parameter does escalate.
        assert_eq!(
            classify(&p, &HttpRequest::get("/x.wasl?id=7"), 4),
            Route::Global
        );
    }

    #[test]
    fn insert_without_row_id_escalates() {
        // Omitting note_id would draw a synthetic id from the global
        // watermark, whose order depends on shard interleaving.
        let p = plan(
            "db_query(\"INSERT INTO note (topic, body) VALUES ('\" . sql_escape(param(\"topic\")) . \"', 'x')\");",
        );
        assert!(matches!(p, RoutePlan::Global(_)));
    }

    #[test]
    fn dynamic_sql_escalates() {
        let p = plan(
            "let t = param(\"title\"); let rows = db_query(\"SELECT body FROM page WHERE title = '\" . t . \"'\"); echo(len(rows));",
        );
        assert!(matches!(p, RoutePlan::Global(_)));
    }

    #[test]
    fn includes_are_analyzed_transitively() {
        let mut sources = SourceStore::new();
        sources.install("entry.wasl", "include \"lib.wasl\"; echo(\"hi\");");
        sources.install("lib.wasl", "fn f() { return rand(); }");
        let p = plan_entry("entry.wasl", &sources, 10, &schema());
        assert!(matches!(p, RoutePlan::Global(_)));

        let mut sources = SourceStore::new();
        sources.install("entry.wasl", "include \"lib.wasl\"; echo(\"hi\");");
        sources.install("lib.wasl", "fn f(x) { return x + 1; }");
        let p = plan_entry("entry.wasl", &sources, 10, &schema());
        assert!(matches!(p, RoutePlan::Shardable { .. }));
    }

    #[test]
    fn cross_partition_requests_escalate_at_classify_time() {
        let p = plan(
            "db_query(\"UPDATE note SET body = 'x' WHERE topic = '\" . sql_escape(param(\"a\")) . \"'\"); \
             db_query(\"UPDATE note SET body = 'y' WHERE topic = '\" . sql_escape(param(\"b\")) . \"'\");",
        );
        let RoutePlan::Shardable { bindings } = &p else {
            panic!("expected shardable, got {p:?}");
        };
        assert_eq!(bindings.len(), 2);
        // Find two topics owned by different shards.
        let (mut same, mut diff) = (None, None);
        for i in 0..64 {
            let t = format!("t{i}");
            let s0 = PartitionKey::new("note", "topic", &SqlValue::text("t0")).shard(4);
            let si = PartitionKey::new("note", "topic", &SqlValue::text(&t)).shard(4);
            if si == s0 {
                same = Some(t);
            } else {
                diff = Some(t);
            }
            if same.is_some() && diff.is_some() {
                break;
            }
        }
        let (same, diff) = (same.unwrap(), diff.unwrap());
        let co = HttpRequest::get(&format!("/x.wasl?a=t0&b={same}"));
        assert!(matches!(classify(&p, &co, 4), Route::Shard(_)));
        let cross = HttpRequest::get(&format!("/x.wasl?a=t0&b={diff}"));
        assert_eq!(classify(&p, &cross, 4), Route::Global);
    }
}
