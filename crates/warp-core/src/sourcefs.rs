//! Versioned storage for application source files.
//!
//! Retroactive patching (paper §3) needs two things from the "filesystem"
//! holding application code: the content that was in effect at any past
//! time, and the ability to splice a patch into the past so re-executed
//! application runs load the fixed code.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A security patch: a full replacement for one source file.
///
/// The paper applies unified diffs to PHP files; in this reproduction a
/// patch carries the complete patched source, which keeps the mechanism
/// identical (the file's content changes as of a past time) without needing
/// a diff engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Patch {
    /// The file being patched.
    pub filename: String,
    /// The fixed source code.
    pub patched_source: String,
    /// A short human-readable description (e.g. the CVE identifier).
    pub description: String,
}

impl Patch {
    /// Creates a patch.
    pub fn new(
        filename: impl Into<String>,
        patched_source: impl Into<String>,
        description: impl Into<String>,
    ) -> Self {
        Patch {
            filename: filename.into(),
            patched_source: patched_source.into(),
            description: description.into(),
        }
    }
}

/// One version of one source file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct SourceVersion {
    /// Time from which this version is effective.
    from_time: i64,
    /// The file content.
    content: String,
    /// True if this version was installed by a retroactive patch (it then
    /// also applies to re-execution of actions *after* `from_time`).
    retroactive: bool,
}

/// The versioned application source tree.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceStore {
    files: BTreeMap<String, Vec<SourceVersion>>,
}

impl SourceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SourceStore::default()
    }

    /// Installs (or replaces) a source file as of time 0 — the application's
    /// initial deployment.
    pub fn install(&mut self, filename: impl Into<String>, content: impl Into<String>) {
        self.files.insert(
            filename.into(),
            vec![SourceVersion {
                from_time: 0,
                content: content.into(),
                retroactive: false,
            }],
        );
    }

    /// Records an ordinary (non-retroactive) code change at `time`, e.g. an
    /// administrator deploying a new application version during normal
    /// operation.
    pub fn update(&mut self, filename: &str, content: impl Into<String>, time: i64) {
        self.files
            .entry(filename.to_string())
            .or_default()
            .push(SourceVersion {
                from_time: time,
                content: content.into(),
                retroactive: false,
            });
    }

    /// Applies a retroactive patch effective from `time` (paper §3.2): during
    /// repair, any application run at or after `time` that loads this file
    /// sees the patched content.
    pub fn apply_retroactive_patch(&mut self, patch: &Patch, time: i64) {
        self.files
            .entry(patch.filename.clone())
            .or_default()
            .push(SourceVersion {
                from_time: time,
                content: patch.patched_source.clone(),
                retroactive: true,
            });
    }

    /// True if the store contains the file.
    pub fn contains(&self, filename: &str) -> bool {
        self.files.contains_key(filename)
    }

    /// Names of all files.
    pub fn filenames(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// The content a *normal* execution at `time` sees: the latest
    /// non-retroactive version with `from_time <= time`, unless a retroactive
    /// patch has already been finalized for an earlier time (after repair the
    /// patched code is simply the current code going forward).
    pub fn content_for_normal_execution(&self, filename: &str, time: i64) -> Option<String> {
        self.content_at(filename, time, true)
    }

    /// The content a *re-execution during repair* at `time` sees: retroactive
    /// versions are taken into account, so runs after the patch time load the
    /// fixed code.
    pub fn content_for_repair(&self, filename: &str, time: i64) -> Option<String> {
        self.content_at(filename, time, true)
    }

    /// The content that was actually in effect at `time` during the original
    /// execution (ignores retroactive patches); useful for forensics.
    pub fn original_content_at(&self, filename: &str, time: i64) -> Option<String> {
        self.content_at(filename, time, false)
    }

    fn content_at(&self, filename: &str, time: i64, include_retroactive: bool) -> Option<String> {
        let versions = self.files.get(filename)?;
        versions
            .iter()
            .filter(|v| v.from_time <= time && (include_retroactive || !v.retroactive))
            .max_by_key(|v| (v.from_time, v.retroactive))
            .map(|v| v.content.clone())
    }

    /// Exports every stored version as `(filename, from_time, content,
    /// retroactive)`, in deterministic order — what a checkpoint stores.
    pub fn export_versions(&self) -> Vec<(String, i64, String, bool)> {
        let mut out = Vec::new();
        for (name, versions) in &self.files {
            for v in versions {
                out.push((name.clone(), v.from_time, v.content.clone(), v.retroactive));
            }
        }
        out
    }

    /// Rebuilds a store from exported versions (the inverse of
    /// [`SourceStore::export_versions`]; version order within a file is
    /// preserved).
    pub fn import_versions(
        versions: impl IntoIterator<Item = (String, i64, String, bool)>,
    ) -> Self {
        let mut store = SourceStore::new();
        for (filename, from_time, content, retroactive) in versions {
            store
                .files
                .entry(filename)
                .or_default()
                .push(SourceVersion {
                    from_time,
                    content,
                    retroactive,
                });
        }
        store
    }

    /// Total bytes of source stored (all versions), for storage accounting.
    pub fn approximate_bytes(&self) -> usize {
        self.files
            .values()
            .flat_map(|vs| vs.iter())
            .map(|v| v.content.len() + 16)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_read_back() {
        let mut s = SourceStore::new();
        s.install("edit.wasl", "v1");
        assert!(s.contains("edit.wasl"));
        assert_eq!(
            s.content_for_normal_execution("edit.wasl", 100),
            Some("v1".to_string())
        );
        assert_eq!(s.content_for_normal_execution("missing.wasl", 100), None);
    }

    #[test]
    fn ordinary_updates_take_effect_at_their_time() {
        let mut s = SourceStore::new();
        s.install("a.wasl", "v1");
        s.update("a.wasl", "v2", 50);
        assert_eq!(
            s.content_for_normal_execution("a.wasl", 10),
            Some("v1".to_string())
        );
        assert_eq!(
            s.content_for_normal_execution("a.wasl", 50),
            Some("v2".to_string())
        );
        assert_eq!(
            s.content_for_normal_execution("a.wasl", 99),
            Some("v2".to_string())
        );
    }

    #[test]
    fn retroactive_patch_changes_the_past_for_repair_only_views() {
        let mut s = SourceStore::new();
        s.install("edit.wasl", "vulnerable");
        let patch = Patch::new("edit.wasl", "fixed", "CVE-2009-4589");
        s.apply_retroactive_patch(&patch, 10);
        // Repair re-execution at a time after the patch point sees the fix.
        assert_eq!(
            s.content_for_repair("edit.wasl", 20),
            Some("fixed".to_string())
        );
        // Before the patch point, even repair sees the old code.
        assert_eq!(
            s.content_for_repair("edit.wasl", 5),
            Some("vulnerable".to_string())
        );
        // The forensic view of what originally ran is unchanged.
        assert_eq!(
            s.original_content_at("edit.wasl", 20),
            Some("vulnerable".to_string())
        );
    }

    #[test]
    fn retroactive_patch_wins_over_same_time_original() {
        let mut s = SourceStore::new();
        s.install("a.wasl", "v1");
        s.update("a.wasl", "v2", 30);
        s.apply_retroactive_patch(&Patch::new("a.wasl", "v2-fixed", "fix"), 30);
        assert_eq!(
            s.content_for_repair("a.wasl", 30),
            Some("v2-fixed".to_string())
        );
    }

    #[test]
    fn byte_accounting_counts_all_versions() {
        let mut s = SourceStore::new();
        s.install("a.wasl", "aaaa");
        s.update("a.wasl", "bbbbbb", 10);
        assert!(s.approximate_bytes() >= 10);
    }
}
