//! The partitioned parallel repair scheduler.
//!
//! The paper's scalability argument (§6–§8) is that repair cost tracks the
//! *attack's footprint*, not history size: actions whose partition-level
//! dependencies never meet cannot affect each other during repair, so their
//! re-execution order is irrelevant and they can be repaired concurrently.
//! This module makes that argument operational:
//!
//! 1. `plan_partitions` builds an explicit partition graph over the action
//!    history using the partition index ([`HistoryGraph::partition_index`])
//!    and groups actions into independent dependency components (union-find
//!    over partition hubs, whole-table hubs and page-visit links).
//! 2. `execute_actions` is the repair loop itself — rollback, selective
//!    query re-execution, full application re-execution and browser replay —
//!    extracted from the classic controller so the same code drives both the
//!    sequential engine (one pass over the whole history, in place) and each
//!    per-partition worker (a pass over one group, against a cloned
//!    database).
//! 3. `run_partitioned` re-executes the seeded groups concurrently on a
//!    scoped `std::thread` worker pool, detects cross-partition conflicts
//!    (re-execution that touched partitions outside its own group), escalates
//!    by merging the conflicting groups and re-running them, and finally
//!    applies each batch's mutation-tracked delta — the exact row versions
//!    its repair removed and added, drained from the clone's delta tracker —
//!    back onto the master database. No snapshots or whole-table diffs are
//!    taken anywhere: merge cost is O(rows changed).
//!
//! Per-partition re-execution stays equivalent to the global time order
//! because groups are closed under the recorded dependency relation, and any
//! *new* dependency surfaced by patched code is caught by the escalation
//! check before the merge is applied.

use crate::apphost::{run_application, AppRunContext, AppRunResult, ExecMode};
use crate::conflict::{Conflict, ConflictKind};
use crate::history::{ActionId, ActionRecord, HistoryGraph};
use crate::sourcefs::SourceStore;
use crate::stats::RepairStats;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;
use warp_browser::{replay_visit, ReplayConfig, ReplayOutcome};
use warp_http::{HttpRequest, HttpResponse, Router, Transport};
use warp_ttdb::{PartitionSet, RepairDelta, RepairSession, RowScope, TimeTravelDb};

/// How a repair is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// The classic engine: one thread walks the entire action history in
    /// time order, re-executing in place.
    Sequential,
    /// The partitioned engine: the history is split into independent
    /// dependency partitions which are re-executed concurrently on `workers`
    /// threads and merged. `workers: 1` still exercises the full
    /// partition/merge machinery on a single thread.
    ///
    /// Worker batches clone only their dependency footprint — down to the
    /// partition level: a table whose footprint is a set of partition keys
    /// contributes only the row versions in those partitions, so a single
    /// hot table shared by many groups is not copied wholesale into every
    /// batch. A batch caught touching state outside its footprint —
    /// possible only through patched code or fresh browser requests —
    /// forces the round to re-run on full clones, so results are always
    /// identical to [`RepairStrategy::PartitionedFullClone`].
    Partitioned {
        /// Worker threads re-executing partitions concurrently (min 1).
        workers: usize,
    },
    /// The partitioned engine with whole-database worker clones. Reference
    /// implementation for the bounded-memory clone equivalence tests; same
    /// results as [`RepairStrategy::Partitioned`], more clone memory.
    PartitionedFullClone {
        /// Worker threads re-executing partitions concurrently (min 1).
        workers: usize,
    },
}

impl RepairStrategy {
    /// The worker count this strategy reports in [`RepairStats::workers`].
    pub fn worker_count(&self) -> usize {
        match self {
            RepairStrategy::Sequential => 0,
            RepairStrategy::Partitioned { workers }
            | RepairStrategy::PartitionedFullClone { workers } => (*workers).max(1),
        }
    }
}

/// How worker batches clone the master database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CloneScope {
    /// Clone only the tables in the batch's dependency footprint.
    Footprint,
    /// Clone every table.
    Full,
}

/// The immutable context a repair pass executes against. Shared by reference
/// across worker threads (everything in it is plain data).
pub(crate) struct RepairEnv<'a> {
    pub sources: &'a SourceStore,
    pub router: &'a Router,
    pub history: &'a HistoryGraph,
    pub replay_config: ReplayConfig,
    /// Mirrors [`crate::server::WarpServer::column_oblivious_repair`]: when
    /// true every repair session widens its dirty columns to `All`.
    pub column_oblivious: bool,
}

/// Everything one repair pass (sequential, or one partition group) produced.
/// Mutations of shared server state (history cancellation flags, the
/// conflict queue, cookie invalidations) are collected here and applied by
/// the controller after the pass, so passes can run against clones.
#[derive(Default)]
pub(crate) struct RepairRun {
    pub stats: RepairStats,
    pub conflicts: Vec<Conflict>,
    pub cancelled: BTreeSet<ActionId>,
    pub reexecuted: BTreeSet<ActionId>,
    pub cookie_invalidations: BTreeSet<String>,
    /// Partition sets of every query actually executed during the pass
    /// (collected only for partitioned runs; used for escalation checks).
    pub dynamic_deps: Vec<PartitionSet>,
    /// Tables whose stored rows this pass may have mutated.
    pub touched_tables: BTreeSet<String>,
    /// Rows rolled back through the pass's session.
    pub rolled_back_rows: usize,
    /// Partitions the pass's session modified.
    pub modified: Vec<PartitionSet>,
}

/// A transport handed to the server-side re-execution browser. Requests the
/// replayed page issues are *collected* for the repair controller to process
/// (re-execute or record as new actions) instead of being executed directly.
#[derive(Debug, Default)]
struct CollectingTransport {
    requests: Vec<HttpRequest>,
}

impl Transport for CollectingTransport {
    fn send(&mut self, request: HttpRequest) -> HttpResponse {
        self.requests.push(request);
        // The replayed page does not get to observe repaired responses
        // directly; the repair controller re-executes the corresponding
        // actions itself.
        HttpResponse::ok("")
    }
}

/// Runs the repair loop over `order` (action IDs in time order): actions in
/// `seed_reexecute` are re-executed with patched code, actions in
/// `seed_cancel` are rolled back and cancelled, and every other action is
/// selectively re-executed only where its recorded dependencies intersect
/// the partitions modified so far (paper §4).
pub(crate) fn execute_actions(
    env: &RepairEnv<'_>,
    db: &mut TimeTravelDb,
    mut session: RepairSession,
    order: &[ActionId],
    seed_reexecute: &BTreeSet<ActionId>,
    seed_cancel: &BTreeSet<ActionId>,
    collect_dynamic: bool,
) -> RepairRun {
    let mut run = RepairRun::default();
    let mut to_reexecute: BTreeSet<ActionId> = order
        .iter()
        .filter(|id| seed_reexecute.contains(id))
        .copied()
        .collect();
    let mut to_cancel: BTreeSet<ActionId> = order
        .iter()
        .filter(|id| seed_cancel.contains(id))
        .copied()
        .collect();
    let mut request_overrides: BTreeMap<ActionId, HttpRequest> = BTreeMap::new();
    let mut reexecuted_visits: BTreeSet<(String, u64)> = BTreeSet::new();

    for &id in order {
        let action = match env.history.action(id) {
            Some(a) if !a.cancelled => a.clone(),
            _ => continue,
        };
        if to_cancel.contains(&id) {
            let t = Instant::now();
            cancel_action(db, &mut session, &action, &mut run);
            run.stats.time_db += t.elapsed();
            continue;
        }
        let explicitly_queued = to_reexecute.contains(&id);
        let mut needs_full_reexecution = explicitly_queued;
        if !needs_full_reexecution {
            // Selective query re-execution (§4.1): only queries whose
            // partitions were modified are re-executed; the run itself is
            // re-executed only if a read query's result changed.
            let affected: Vec<usize> = action
                .queries
                .iter()
                .enumerate()
                .filter(|(_, q)| session.dependency_affected(&q.dependency))
                .map(|(i, _)| i)
                .collect();
            if affected.is_empty() {
                continue;
            }
            let t = Instant::now();
            for i in affected {
                let q = &action.queries[i];
                let stmt = match warp_sql::parse(&q.sql) {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if q.is_write {
                    match session.reexecute_write(db, &stmt, q.time, &q.written_row_ids) {
                        Ok(out) => {
                            if collect_dynamic {
                                collect_deps(&mut run, std::iter::once(&out.dependency));
                            }
                            run.touched_tables.insert(q.dependency.table.clone());
                        }
                        Err(_) => {
                            run.touched_tables.insert(q.dependency.table.clone());
                        }
                    }
                    run.stats.queries_reexecuted += 1;
                } else {
                    match session.reexecute_read(db, &stmt, q.time) {
                        Ok(out) => {
                            run.stats.queries_reexecuted += 1;
                            if out.result.fingerprint() != q.result_fingerprint {
                                needs_full_reexecution = true;
                            }
                        }
                        Err(_) => needs_full_reexecution = true,
                    }
                }
            }
            run.stats.time_db += t.elapsed();
            if !needs_full_reexecution {
                continue;
            }
        }
        // Full application re-execution.
        let t_app = Instant::now();
        let effective_request = request_overrides
            .get(&id)
            .cloned()
            .unwrap_or_else(|| action.request.clone());
        let result = reexecute_action(env, db, &mut session, &action, &effective_request);
        run.reexecuted.insert(id);
        run.stats.app_runs_reexecuted += 1;
        run.stats.queries_reexecuted += result.queries_reexecuted;
        if collect_dynamic {
            collect_deps(&mut run, result.queries.iter().map(|q| &q.dependency));
        }
        for q in &result.queries {
            if q.is_write {
                run.touched_tables.insert(q.dependency.table.clone());
            }
        }
        // Roll back the effects of original writes the patched run no
        // longer performs (this is how an attack's database changes are
        // undone when retroactive patching makes them disappear).
        for (i, q) in action.queries.iter().enumerate() {
            let matched = result
                .used_original_queries
                .get(i)
                .copied()
                .unwrap_or(false);
            if q.is_write && !matched {
                let _ = session.rollback_rows(db, &q.dependency.table, &q.written_row_ids, q.time);
                run.stats.rows_rolled_back += q.written_row_ids.len();
                session.note_modified_columns(
                    &q.dependency.write_partitions,
                    &q.dependency.write_columns,
                );
                run.touched_tables.insert(q.dependency.table.clone());
            }
        }
        run.stats.time_app += t_app.elapsed();
        let response_changed = result.response.fingerprint() != action.response.fingerprint();
        if let Some(err) = &result.script_error {
            run.conflicts.push(Conflict::new(
                action
                    .client
                    .as_ref()
                    .map(|c| c.client_id.as_str())
                    .unwrap_or("<server>"),
                action.client.as_ref().map(|c| c.visit_id).unwrap_or(0),
                &action.request.path,
                ConflictKind::ReexecutionFailed(err.clone()),
            ));
        }
        if !response_changed {
            continue;
        }
        // Browser re-execution for the page visit that received the changed
        // response (paper §5).
        let Some(client) = action.client.clone() else {
            continue;
        };
        let visit_key = (client.client_id.clone(), client.visit_id);
        if reexecuted_visits.contains(&visit_key) {
            continue;
        }
        reexecuted_visits.insert(visit_key);
        run.stats.page_visits_reexecuted += 1;
        let t_browser = Instant::now();
        let replay = replay_client_visit(
            env,
            &mut run,
            &client.client_id,
            client.visit_id,
            &result.response,
        );
        run.stats.time_browser += t_browser.elapsed();
        match replay {
            Some(outcome) => {
                if let Some(reason) = outcome.conflict.clone() {
                    run.conflicts.push(Conflict::new(
                        &client.client_id,
                        client.visit_id,
                        &action.request.path,
                        ConflictKind::BrowserReplay(reason),
                    ));
                    // Per §5.4: queue the conflict and assume subsequent
                    // requests are unchanged.
                    continue;
                }
                // Requests re-issued by the replayed page replace the
                // originals; requests no longer issued are cancelled.
                let mut reissued: BTreeSet<u64> = BTreeSet::new();
                for replayed in &outcome.requests {
                    match replayed.matched_request_id {
                        Some(orig_request_id) => {
                            reissued.insert(orig_request_id);
                            if let Some(target) = env.history.action_for_request(
                                &client.client_id,
                                client.visit_id,
                                orig_request_id,
                            ) {
                                if target != id {
                                    request_overrides.insert(target, replayed.request.clone());
                                    to_reexecute.insert(target);
                                }
                            }
                        }
                        None => {
                            // A brand-new request that did not exist during
                            // the original execution: run it now inside the
                            // repair generation.
                            let t = Instant::now();
                            let fresh = run_fresh_in_repair(
                                env,
                                db,
                                &mut session,
                                &replayed.request,
                                action.time,
                            );
                            run.stats.queries_reexecuted += fresh.queries_reexecuted;
                            if collect_dynamic {
                                collect_deps(&mut run, fresh.queries.iter().map(|q| &q.dependency));
                            }
                            for q in &fresh.queries {
                                if q.is_write {
                                    run.touched_tables.insert(q.dependency.table.clone());
                                }
                            }
                            run.stats.time_app += t.elapsed();
                        }
                    }
                }
                for other_id in env
                    .history
                    .actions_for_visit(&client.client_id, client.visit_id)
                {
                    if other_id == id {
                        continue;
                    }
                    let other = match env.history.action(other_id) {
                        Some(a) => a,
                        None => continue,
                    };
                    let other_request_id = other
                        .client
                        .as_ref()
                        .map(|c| c.request_id)
                        .unwrap_or(u64::MAX);
                    if !reissued.contains(&other_request_id) && !other.cancelled {
                        to_cancel.insert(other_id);
                    }
                }
            }
            None => {
                // No client log (extension not installed): Warp cannot
                // verify the browser's behaviour; inform the user.
                run.conflicts.push(Conflict::new(
                    &client.client_id,
                    client.visit_id,
                    &action.request.path,
                    ConflictKind::BrowserReplay(warp_browser::ConflictReason::NoClientLog),
                ));
            }
        }
    }

    run.stats.rows_rolled_back = run.stats.rows_rolled_back.max(session.rolled_back_rows);
    run.rolled_back_rows = session.rolled_back_rows;
    run.modified = session.modified_partitions().to_vec();
    run
}

fn collect_deps<'a>(
    run: &mut RepairRun,
    deps: impl Iterator<Item = &'a warp_ttdb::QueryDependency>,
) {
    for dep in deps {
        let (read, write) = crate::history::normalized_dependency_partitions(dep);
        run.dynamic_deps.extend(read.cloned());
        run.dynamic_deps.extend(write);
    }
}

/// Re-executes one recorded action with the (possibly patched) sources and
/// the repair session.
fn reexecute_action(
    env: &RepairEnv<'_>,
    db: &mut TimeTravelDb,
    session: &mut RepairSession,
    action: &ActionRecord,
    request: &HttpRequest,
) -> AppRunResult {
    let entry = env
        .router
        .resolve(&request.path)
        .unwrap_or_else(|| action.entry_script.clone());
    run_application(AppRunContext {
        request,
        entry_script: entry,
        sources: env.sources,
        action_time: action.time,
        db: crate::apphost::DbAccess::Exclusive(db),
        mode: ExecMode::Repair {
            session,
            original: Some(action),
        },
    })
}

/// Executes a brand-new request (discovered during browser replay) inside
/// the repair generation at the given time.
fn run_fresh_in_repair(
    env: &RepairEnv<'_>,
    db: &mut TimeTravelDb,
    session: &mut RepairSession,
    request: &HttpRequest,
    time: i64,
) -> AppRunResult {
    let entry = match env.router.resolve(&request.path) {
        Some(e) => e,
        None => {
            return AppRunResult {
                response: HttpResponse::not_found("no route"),
                loaded_files: Vec::new(),
                queries: Vec::new(),
                nondet: Vec::new(),
                used_original_queries: Vec::new(),
                script_error: None,
                queries_reexecuted: 0,
            }
        }
    };
    run_application(AppRunContext {
        request,
        entry_script: entry,
        sources: env.sources,
        action_time: time,
        db: crate::apphost::DbAccess::Exclusive(db),
        mode: ExecMode::Repair {
            session,
            original: None,
        },
    })
}

/// Rolls back everything an action wrote and records it as cancelled.
fn cancel_action(
    db: &mut TimeTravelDb,
    session: &mut RepairSession,
    action: &ActionRecord,
    run: &mut RepairRun,
) {
    for q in &action.queries {
        if q.is_write {
            let _ = session.rollback_rows(db, &q.dependency.table, &q.written_row_ids, q.time);
            run.stats.rows_rolled_back += q.written_row_ids.len();
            session
                .note_modified_columns(&q.dependency.write_partitions, &q.dependency.write_columns);
            run.touched_tables.insert(q.dependency.table.clone());
        }
    }
    run.cancelled.insert(action.id);
    run.stats.actions_cancelled += 1;
}

/// Replays a client's page visit against the repaired response. Returns
/// `None` when the client uploaded no log for that visit.
fn replay_client_visit(
    env: &RepairEnv<'_>,
    run: &mut RepairRun,
    client_id: &str,
    visit_id: u64,
    new_response: &HttpResponse,
) -> Option<ReplayOutcome> {
    let record = env.history.client_log(client_id, visit_id)?.clone();
    // The re-execution browser gets the cookies the original request to this
    // visit carried.
    let cookies = env
        .history
        .actions_for_visit(client_id, visit_id)
        .first()
        .and_then(|&id| env.history.action(id))
        .map(|a| a.request.cookies.clone())
        .unwrap_or_default();
    let mut transport = CollectingTransport::default();
    let config = env.replay_config;
    let outcome = replay_visit(
        &record,
        new_response,
        cookies.clone(),
        &mut transport,
        &config,
    );
    // Queue a cookie invalidation if the repaired cookie differs from the
    // user's real cookie (§5.3).
    if outcome.is_clean() && outcome.cookies != cookies {
        run.cookie_invalidations.insert(client_id.to_string());
    }
    Some(outcome)
}

// ---------------------------------------------------------------------------
// Partition planning
// ---------------------------------------------------------------------------

/// Deterministic union-find over dense indices (used to cluster partition
/// groups into worker-sized rounds).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = i;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Unions two sets; the smaller index becomes the representative, which
    /// keeps group numbering deterministic.
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
    }
}

/// The partition graph: independent dependency groups of the history.
pub(crate) struct PartitionPlan {
    /// Action IDs per group, each sorted by `(time, id)`. Groups are ordered
    /// by their smallest member action ID, so numbering is deterministic.
    pub groups: Vec<Vec<ActionId>>,
    /// Static footprint per group: the normalized partition sets of every
    /// recorded query of the group's actions.
    pub footprints: Vec<Vec<PartitionSet>>,
}

/// Builds the partition graph over all live (non-cancelled) actions:
///
/// * actions of one page visit are linked (browser replay spans the visit);
/// * for every partition with at least one writer, all of its readers and
///   writers are linked (a writer's re-execution can change what the readers
///   saw, and vice versa during rollback);
/// * a whole-table *write* links everything touching the table; a
///   whole-table *read* links with every written partition of the table;
/// * partitions nobody writes link nothing — read-sharing is harmless.
///
/// The link structure itself is maintained *incrementally* by the history
/// graph as actions are recorded ([`HistoryGraph::partition_components`]),
/// so planning a repair no longer rescans every recorded query — it only
/// reads off the components and concatenates their footprints.
pub(crate) fn plan_partitions(history: &HistoryGraph) -> PartitionPlan {
    let components = history.partition_components();
    let mut groups = Vec::with_capacity(components.len());
    let mut footprints = Vec::with_capacity(components.len());
    for mut ids in components {
        ids.sort_by_key(|&id| (history.action(id).map(|a| a.time).unwrap_or(0), id));
        let mut footprint = Vec::new();
        for &id in &ids {
            if let Some(action) = history.action(id) {
                footprint.extend(action.partition_footprint());
            }
        }
        groups.push(ids);
        footprints.push(footprint);
    }
    PartitionPlan { groups, footprints }
}

fn footprints_intersect(a: &[PartitionSet], b: &[PartitionSet]) -> bool {
    a.iter().any(|x| b.iter().any(|y| x.intersects(y)))
}

/// Widens a bounded-clone row scope to cover a partition set.
fn widen_scope(scope: &mut BTreeMap<String, RowScope>, partitions: &PartitionSet) {
    match partitions {
        PartitionSet::Whole { table } => {
            scope.insert(table.clone(), RowScope::AllRows);
        }
        PartitionSet::Keys(keys) => {
            for key in keys {
                match scope
                    .entry(key.table.clone())
                    .or_insert_with(|| RowScope::Partitions(BTreeSet::new()))
                {
                    RowScope::AllRows => {}
                    RowScope::Partitions(set) => {
                        set.insert(key.clone());
                    }
                }
            }
        }
    }
}

/// Merges scope `b` into scope `a` (AllRows absorbs partition lists).
fn union_scopes(a: &mut BTreeMap<String, RowScope>, b: &BTreeMap<String, RowScope>) {
    for (table, s) in b {
        match a.entry(table.clone()) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().union_with(s),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(s.clone());
            }
        }
    }
}

/// True if every partition the set covers lies inside the scope a bounded
/// clone was built from. An out-of-scope partition means the clone was
/// missing rows the re-execution may have needed.
fn scope_contains(scope: &BTreeMap<String, RowScope>, partitions: &PartitionSet) -> bool {
    match partitions {
        PartitionSet::Whole { table } => matches!(scope.get(table), Some(RowScope::AllRows)),
        PartitionSet::Keys(keys) => keys.iter().all(|key| match scope.get(&key.table) {
            Some(RowScope::AllRows) => true,
            Some(RowScope::Partitions(set)) => set.contains(key),
            None => false,
        }),
    }
}

// ---------------------------------------------------------------------------
// The parallel driver
// ---------------------------------------------------------------------------

/// Synthetic row-ID range reserved per worker batch, so inserts re-executed
/// on different workers cannot allocate colliding IDs.
const SYNTHETIC_ID_STRIDE: i64 = 1_000_000;

/// What the partitioned engine produced. The repair generation has been
/// begun on the master database (and the merged diffs applied to it, unless
/// the repair is aborting); the controller finalizes or aborts it.
pub(crate) struct PartitionedResult {
    /// The merged outcome of every repaired partition.
    pub run: RepairRun,
    pub partitions_total: usize,
    pub partitions_repaired: usize,
    pub escalations: usize,
    /// Rounds that had to be re-run on full clones because a batch touched
    /// a table outside its bounded-clone footprint.
    pub bounded_fallbacks: usize,
}

/// One worker batch's results plus the mutation delta its clone tracked.
/// The clone itself is dropped as soon as its delta is drained — the merge
/// needs only the O(rows changed) delta, never the cloned tables.
struct RoundBatch {
    /// `(cluster index, run)` for each cluster this batch processed.
    runs: Vec<(usize, RepairRun)>,
    /// The per-table row sets the batch's repair removed/added on its
    /// clone, drained from the clone's delta tracker; empty for an
    /// in-place round (the master database tracked those directly).
    deltas: RepairDelta,
    /// The synthetic-ID watermark the clone started from.
    id_watermark_start: i64,
    /// The synthetic-ID watermark after the batch ran.
    id_watermark_end: i64,
}

/// Runs the partitioned repair: plan, re-execute seeded groups concurrently,
/// escalate on cross-partition conflicts, and merge the per-partition row
/// diffs into `db`. The merge is skipped when the repair will abort
/// (non-admin with conflicts), leaving the master database untouched.
pub(crate) fn run_partitioned(
    env: &RepairEnv<'_>,
    db: &mut TimeTravelDb,
    seed_reexecute: &BTreeSet<ActionId>,
    seed_cancel: &BTreeSet<ActionId>,
    workers: usize,
    initiated_by_admin: bool,
    clone_scope: CloneScope,
) -> PartitionedResult {
    let plan = plan_partitions(env.history);
    let n_groups = plan.groups.len();
    let mut cluster_uf = UnionFind::new(n_groups);
    let seeded: Vec<bool> = plan
        .groups
        .iter()
        .map(|g| {
            g.iter()
                .any(|id| seed_reexecute.contains(id) || seed_cancel.contains(id))
        })
        .collect();
    let mut escalations = 0usize;
    let mut bounded_fallbacks = 0usize;

    let (batches, clusters, in_place) = loop {
        // Materialize the current seeded clusters (merged base groups).
        let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for g in 0..n_groups {
            let root = cluster_uf.find(g);
            by_root.entry(root).or_default().push(g);
        }
        let clusters: Vec<Vec<usize>> = by_root
            .into_values()
            .filter(|gs| gs.iter().any(|&g| seeded[g]))
            .collect();
        let root_to_cluster: BTreeMap<usize, usize> = clusters
            .iter()
            .enumerate()
            .map(|(ci, gs)| (gs[0], ci))
            .collect();
        let units: Vec<Vec<ActionId>> = clusters
            .iter()
            .map(|gs| {
                let mut ids: Vec<ActionId> = gs
                    .iter()
                    .flat_map(|&g| plan.groups[g].iter().copied())
                    .collect();
                ids.sort_by_key(|&id| (env.history.action(id).map(|a| a.time).unwrap_or(0), id));
                ids
            })
            .collect();

        // The dependency-footprint row scope of each repair unit: with
        // bounded-memory clones a worker batch copies only these tables —
        // and within a table whose footprint is partition keys, only the
        // row versions in those partitions.
        let unit_scopes: Vec<BTreeMap<String, RowScope>> = clusters
            .iter()
            .map(|gs| {
                let mut scope = BTreeMap::new();
                for p in gs.iter().flat_map(|&g| plan.footprints[g].iter()) {
                    widen_scope(&mut scope, p);
                }
                // Partition-filtered rows are only sound for tables whose
                // every unique constraint includes a partition column
                // (colliding rows then always share a partition and are
                // cloned together); anything else is widened to the whole
                // table so re-executed uniqueness checks see every row
                // they would see on a full clone.
                for (table, table_scope) in scope.iter_mut() {
                    if matches!(table_scope, RowScope::Partitions(_))
                        && !db.partition_clone_safe(table)
                    {
                        *table_scope = RowScope::AllRows;
                    }
                }
                scope
            })
            .collect();

        // With at most one repair unit there is nothing to isolate: run it
        // in place on the master database and skip the clone/diff machinery
        // entirely. If its re-execution escalates, the repair generation is
        // aborted (discarding every in-place change) and the merged cluster
        // is re-run.
        let in_place = units.len() <= 1;
        let batches = if in_place {
            let mut session = RepairSession::begin_precise(db);
            session.set_column_oblivious(env.column_oblivious);
            let runs = match units.first() {
                Some(unit) => vec![(
                    0usize,
                    execute_actions(env, db, session, unit, seed_reexecute, seed_cancel, true),
                )],
                None => Vec::new(),
            };
            vec![RoundBatch {
                runs,
                deltas: RepairDelta::new(),
                id_watermark_start: db.synthetic_id_watermark(),
                id_watermark_end: db.synthetic_id_watermark(),
            }]
        } else {
            let scopes = match clone_scope {
                CloneScope::Footprint => Some(unit_scopes.as_slice()),
                CloneScope::Full => None,
            };
            let mut batches = run_round(
                env,
                db,
                &units,
                seed_reexecute,
                seed_cancel,
                workers,
                scopes,
            );
            // A batch that touched state outside its footprint scope
            // executed against a clone missing rows it may have needed, so
            // its results cannot be trusted: discard the round and re-run
            // it on full clones (the synthetic-ID ranges restart from the
            // same base, so the re-run allocates exactly what a full-clone
            // round would have).
            if scopes.is_some() && round_escaped_footprint(&batches, &unit_scopes) {
                bounded_fallbacks += 1;
                batches = run_round(env, db, &units, seed_reexecute, seed_cancel, workers, None);
            }
            batches
        };

        // Escalation check: did any cluster's re-execution modify partitions
        // that another group (repaired or not) depends on? Recorded
        // footprints cannot overlap across groups by construction, so this
        // only fires when patched code or fresh browser requests touched
        // state outside their own partition.
        let mut cluster_run: Vec<Option<&RepairRun>> = vec![None; clusters.len()];
        for batch in &batches {
            for (ci, run) in &batch.runs {
                cluster_run[*ci] = Some(run);
            }
        }
        let mut merges: Vec<(usize, usize)> = Vec::new();
        for ci in 0..clusters.len() {
            let Some(run) = cluster_run[ci] else { continue };
            if run.modified.is_empty() {
                continue;
            }
            let my_root = cluster_uf.find(clusters[ci][0]);
            for other in 0..n_groups {
                let other_root = cluster_uf.find(other);
                if other_root == my_root {
                    continue;
                }
                let mut affected = footprints_intersect(&run.modified, &plan.footprints[other]);
                if !affected {
                    // A repaired cluster's *dynamic* reads and writes also
                    // count as its footprint.
                    if let Some(&oc) = root_to_cluster.get(&other_root) {
                        if let Some(other_run) = cluster_run[oc] {
                            affected = footprints_intersect(&run.modified, &other_run.dynamic_deps);
                        }
                    }
                }
                if affected {
                    merges.push((clusters[ci][0], other));
                }
            }
        }
        if merges.is_empty() {
            break (batches, clusters, in_place);
        }
        if in_place {
            // Discard the in-place changes before re-running the merged
            // cluster against pristine state.
            let _ = db.abort_repair_generation();
        }
        escalations += 1;
        for (a, b) in merges {
            cluster_uf.union(a, b);
        }
        // Merged clusters are re-run from fresh state; previous results are
        // discarded wholesale so every cluster's view stays consistent.
    };

    // Aggregate per-cluster outcomes in deterministic cluster order, so the
    // merged result is identical for every worker count.
    let mut ordered: Vec<Option<&RepairRun>> = vec![None; clusters.len()];
    for batch in &batches {
        for (ci, run) in &batch.runs {
            ordered[*ci] = Some(run);
        }
    }
    let mut merged = RepairRun::default();
    for (ci, run) in ordered.iter().enumerate() {
        let Some(run) = run else { continue };
        merged.stats.page_visits_reexecuted += run.stats.page_visits_reexecuted;
        merged.stats.app_runs_reexecuted += run.stats.app_runs_reexecuted;
        merged.stats.queries_reexecuted += run.stats.queries_reexecuted;
        merged.stats.rows_rolled_back += run.stats.rows_rolled_back;
        merged.stats.actions_cancelled += run.stats.actions_cancelled;
        merged.stats.time_db += run.stats.time_db;
        merged.stats.time_app += run.stats.time_app;
        merged.stats.time_browser += run.stats.time_browser;
        merged
            .conflicts
            .extend(run.conflicts.iter().cloned().map(|c| c.with_partition(ci)));
        merged.cancelled.extend(run.cancelled.iter().copied());
        merged.reexecuted.extend(run.reexecuted.iter().copied());
        merged
            .cookie_invalidations
            .extend(run.cookie_invalidations.iter().cloned());
        merged.rolled_back_rows += run.rolled_back_rows;
    }
    merged.stats.conflicts = merged.conflicts.len();

    // Merge phase: apply the per-batch mutation deltas to the master
    // database, all inside one repair generation that the controller
    // finalizes atomically. Each batch's delta was tracked against the
    // master state its clone was taken from, and batches touch disjoint
    // partitions, so the deltas compose by direct application — no
    // snapshots and no table diffs anywhere on this path. Skipped entirely
    // when the repair is going to abort, leaving the master database
    // untouched. An in-place round already executed against the master
    // inside the repair generation, so there is nothing to merge (and an
    // abort by the controller discards its changes).
    let t_merge = Instant::now();
    let aborting = !initiated_by_admin && !merged.conflicts.is_empty();
    if !in_place {
        db.begin_repair_generation();
        if !aborting {
            for batch in &batches {
                for (table, delta) in &batch.deltas {
                    let _ = db.apply_row_diff(table, &delta.remove, &delta.add);
                }
                if batch.id_watermark_end > batch.id_watermark_start {
                    // A batch overrunning its reserved ID range would collide
                    // with the next batch's synthetic row IDs — corrupt the
                    // merge loudly rather than silently.
                    assert!(
                        batch.id_watermark_end - batch.id_watermark_start < SYNTHETIC_ID_STRIDE,
                        "repair batch allocated more than {SYNTHETIC_ID_STRIDE} synthetic row IDs"
                    );
                    db.raise_synthetic_id_watermark(batch.id_watermark_end);
                }
            }
        }
    }
    merged.stats.time_ctrl += t_merge.elapsed();

    PartitionedResult {
        run: merged,
        partitions_total: n_groups,
        partitions_repaired: clusters.iter().map(|gs| gs.len()).sum(),
        escalations,
        bounded_fallbacks,
    }
}

/// True if any batch of the round touched partitions (or whole tables)
/// outside the footprint scope its bounded clone was built from.
fn round_escaped_footprint(
    batches: &[RoundBatch],
    unit_scopes: &[BTreeMap<String, RowScope>],
) -> bool {
    batches.iter().any(|batch| {
        let mut scope: BTreeMap<String, RowScope> = BTreeMap::new();
        for (u, _) in &batch.runs {
            union_scopes(&mut scope, &unit_scopes[*u]);
        }
        batch.runs.iter().any(|(_, run)| {
            run.dynamic_deps
                .iter()
                .chain(run.modified.iter())
                .any(|p| !scope_contains(&scope, p))
                || run.touched_tables.iter().any(|t| !scope.contains_key(t))
        })
    })
}

/// Executes one round: distributes the repair units (clusters) over worker
/// batches (longest-processing-time-first for balance), clones the master
/// database once per batch, and runs every batch on its own scoped thread.
///
/// With `unit_scopes`, each batch's clone carries row data only for its
/// units' dependency footprints — whole tables where the footprint is
/// whole-table, just the footprint partitions otherwise (bounded-memory
/// clones); `None` clones the whole database.
fn run_round(
    env: &RepairEnv<'_>,
    db: &TimeTravelDb,
    units: &[Vec<ActionId>],
    seed_reexecute: &BTreeSet<ActionId>,
    seed_cancel: &BTreeSet<ActionId>,
    workers: usize,
    unit_scopes: Option<&[BTreeMap<String, RowScope>]>,
) -> Vec<RoundBatch> {
    if units.is_empty() {
        return Vec::new();
    }
    let n_batches = workers.max(1).min(units.len());
    let mut batch_units: Vec<Vec<usize>> = vec![Vec::new(); n_batches];
    let mut batch_load: Vec<usize> = vec![0; n_batches];
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&u| (usize::MAX - units[u].len(), u));
    for u in order {
        let target = (0..n_batches)
            .min_by_key(|&b| (batch_load[b], b))
            .unwrap_or(0);
        batch_units[target].push(u);
        batch_load[target] += units[u].len();
    }
    let base_watermark = db.synthetic_id_watermark();

    // Batch *structure* (and with it clone count, synthetic-ID ranges and
    // result shape) depends only on the requested worker count, so outcomes
    // are hardware-independent. The number of OS threads is additionally
    // capped at the machine's parallelism — more runnable threads than cores
    // buys nothing for CPU-bound re-execution and costs cache locality.
    let n_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n_batches)
        .max(1);
    let run_batch = |bi: usize, unit_ids: &[usize]| {
        let mut clone = match unit_scopes {
            Some(scopes) => {
                let mut scope = BTreeMap::new();
                for &u in unit_ids {
                    union_scopes(&mut scope, &scopes[u]);
                }
                db.clone_subset(&scope)
            }
            None => db.clone(),
        };
        let start = base_watermark + (bi as i64) * SYNTHETIC_ID_STRIDE;
        clone.raise_synthetic_id_watermark(start);
        let mut runs = Vec::with_capacity(unit_ids.len());
        for &u in unit_ids {
            let mut session = RepairSession::begin_precise(&mut clone);
            session.set_column_oblivious(env.column_oblivious);
            let run = execute_actions(
                env,
                &mut clone,
                session,
                &units[u],
                seed_reexecute,
                seed_cancel,
                true,
            );
            runs.push((u, run));
        }
        // Drain the clone's tracked mutation delta and drop the clone: the
        // merge needs only what changed, never the cloned tables.
        RoundBatch {
            runs,
            deltas: clone.drain_repair_delta(),
            id_watermark_start: start,
            id_watermark_end: clone.synthetic_id_watermark(),
        }
    };
    if n_threads == 1 {
        return batch_units
            .iter()
            .enumerate()
            .map(|(bi, ids)| run_batch(bi, ids))
            .collect();
    }
    let mut results: Vec<Option<RoundBatch>> = Vec::new();
    results.resize_with(n_batches, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|t| {
                let batch_units = &batch_units;
                let run_batch = &run_batch;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut bi = t;
                    while bi < batch_units.len() {
                        out.push((bi, run_batch(bi, &batch_units[bi])));
                        bi += n_threads;
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (bi, batch) in handle.join().expect("repair worker panicked") {
                results[bi] = Some(batch);
            }
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppConfig;
    use crate::repair::RepairRequest;
    use crate::server::WarpServer;
    use crate::sourcefs::Patch;
    use warp_sql::Value;
    use warp_ttdb::TableAnnotation;

    /// A notes app with one table partitioned by `topic`: each request
    /// touches exactly one topic, so distinct topics form independent
    /// dependency partitions.
    fn notes_app(topics: usize) -> AppConfig {
        let mut config = AppConfig::new("notes");
        config.add_table(
            "CREATE TABLE note (note_id INTEGER PRIMARY KEY, topic TEXT UNIQUE, body TEXT)",
            TableAnnotation::new()
                .row_id("note_id")
                .partitions(["topic"]),
        );
        for t in 0..topics {
            config.seed(format!(
                "INSERT INTO note (note_id, topic, body) VALUES ({}, 't{t}', 'seed {t}')",
                t + 1
            ));
        }
        config.add_source(
            "post.wasl",
            "db_query(\"UPDATE note SET body = '\" . sql_escape(param(\"body\")) . \"' \
             WHERE topic = '\" . sql_escape(param(\"topic\")) . \"'\"); echo(\"ok\");",
        );
        config.add_source(
            "read.wasl",
            "let rows = db_query(\"SELECT body FROM note WHERE topic = '\" . sql_escape(param(\"topic\")) . \"'\"); \
             if (len(rows) > 0) { echo(rows[0][\"body\"]); } else { echo(\"none\"); }",
        );
        config
    }

    /// The "patch" stores an upper-cased marker, so re-executed posts write
    /// different content and dependent reads change.
    fn notes_patch() -> Patch {
        Patch::new(
            "post.wasl",
            "db_query(\"UPDATE note SET body = 'PATCHED:' . sql_escape(param(\"body\")) . '' \
             WHERE topic = '\" . sql_escape(param(\"topic\")) . \"'\"); echo(\"ok\");",
            "sanitise stored notes",
        )
    }

    fn notes_traffic(server: &mut WarpServer, topics: usize) {
        use warp_http::HttpRequest;
        for round in 0..3 {
            for t in 0..topics {
                server.handle(HttpRequest::post(
                    "/post.wasl",
                    [
                        ("topic", format!("t{t}").as_str()),
                        ("body", format!("note {round} for {t}").as_str()),
                    ],
                ));
                server.handle(HttpRequest::get(&format!("/read.wasl?topic=t{t}")));
            }
        }
    }

    fn assert_equivalent(seq: &WarpServer, par: &WarpServer, label: &str) {
        let mut seq_db = seq.db.clone();
        let mut par_db = par.db.clone();
        assert_eq!(
            seq_db.canonical_dump(),
            par_db.canonical_dump(),
            "{label}: final database state must match the sequential engine"
        );
        let seq_cancelled: Vec<ActionId> = seq
            .history
            .actions()
            .iter()
            .filter(|a| a.cancelled)
            .map(|a| a.id)
            .collect();
        let par_cancelled: Vec<ActionId> = par
            .history
            .actions()
            .iter()
            .filter(|a| a.cancelled)
            .map(|a| a.id)
            .collect();
        assert_eq!(
            seq_cancelled, par_cancelled,
            "{label}: cancelled sets must match"
        );
    }

    #[test]
    fn partitioned_repair_matches_sequential_on_disjoint_topics() {
        let topics = 5;
        for workers in [1usize, 3] {
            let mut seq = WarpServer::new(notes_app(topics));
            notes_traffic(&mut seq, topics);
            let seq_out = seq.repair(RepairRequest::RetroactivePatch {
                patch: notes_patch(),
                from_time: 0,
            });

            let mut par = WarpServer::new(notes_app(topics));
            notes_traffic(&mut par, topics);
            let par_out = par.repair_with(
                RepairRequest::RetroactivePatch {
                    patch: notes_patch(),
                    from_time: 0,
                },
                RepairStrategy::Partitioned { workers },
            );

            assert!(!seq_out.aborted && !par_out.aborted);
            assert_eq!(
                seq_out.reexecuted_actions, par_out.reexecuted_actions,
                "workers={workers}: re-executed action sets must match"
            );
            assert_eq!(seq_out.cancelled_actions, par_out.cancelled_actions);
            assert_equivalent(&seq, &par, &format!("workers={workers}"));
            // The history decomposes into one partition per topic (each pair
            // of post+read actions shares only its own topic partition).
            assert_eq!(par_out.stats.partitions_total, topics);
            assert_eq!(par_out.stats.partitions_repaired, topics);
            assert_eq!(par_out.stats.escalations, 0);
            assert_eq!(par_out.stats.workers, workers);
        }
    }

    #[test]
    fn partition_plan_links_writers_readers_and_whole_table_scans() {
        let mut server = WarpServer::new(notes_app(4));
        use warp_http::HttpRequest;
        // t0: writer + reader; t1: reader only; t2 and t3: writers.
        server.handle(HttpRequest::post(
            "/post.wasl",
            [("topic", "t0"), ("body", "x")],
        ));
        server.handle(HttpRequest::get("/read.wasl?topic=t0"));
        server.handle(HttpRequest::get("/read.wasl?topic=t1"));
        server.handle(HttpRequest::post(
            "/post.wasl",
            [("topic", "t2"), ("body", "y")],
        ));
        server.handle(HttpRequest::post(
            "/post.wasl",
            [("topic", "t3"), ("body", "z")],
        ));
        let plan = plan_partitions(&server.history);
        // {post t0, read t0} | {read t1} | {post t2} | {post t3}
        assert_eq!(plan.groups.len(), 4);
        assert_eq!(plan.groups[0], vec![0, 1]);

        // A whole-table scan that coexists with writers collapses everything
        // it can see into one group.
        let mut config = notes_app(2);
        config.add_source(
            "scan.wasl",
            "let rows = db_query(\"SELECT body FROM note\"); echo(len(rows));",
        );
        let mut server = WarpServer::new(config);
        server.handle(HttpRequest::post(
            "/post.wasl",
            [("topic", "t0"), ("body", "x")],
        ));
        server.handle(HttpRequest::post(
            "/post.wasl",
            [("topic", "t1"), ("body", "y")],
        ));
        server.handle(HttpRequest::get("/scan.wasl"));
        let plan = plan_partitions(&server.history);
        assert_eq!(
            plan.groups.len(),
            1,
            "whole-table reader joins every written partition"
        );
    }

    #[test]
    fn cross_partition_write_by_patched_code_escalates_and_stays_correct() {
        // The original code writes the topic the request names; the "patch"
        // redirects every write of t0 to t1 — a dependency that exists in no
        // recorded footprint, so the engine must detect it at re-execution
        // time and merge the partitions.
        let build = || {
            let mut server = WarpServer::new(notes_app(3));
            use warp_http::HttpRequest;
            server.handle(HttpRequest::post(
                "/post.wasl",
                [("topic", "t0"), ("body", "a")],
            ));
            server.handle(HttpRequest::get("/read.wasl?topic=t1"));
            server.handle(HttpRequest::post(
                "/post.wasl",
                [("topic", "t2"), ("body", "c")],
            ));
            server
        };
        let redirect_patch = Patch::new(
            "post.wasl",
            "let t = param(\"topic\"); if (t == \"t0\") { t = \"t1\"; } \
             db_query(\"UPDATE note SET body = '\" . sql_escape(param(\"body\")) . \"' \
             WHERE topic = '\" . sql_escape(t) . \"'\"); echo(\"ok\");",
            "redirect t0 writes to t1",
        );
        let mut seq = build();
        let seq_out = seq.repair(RepairRequest::RetroactivePatch {
            patch: redirect_patch.clone(),
            from_time: 0,
        });
        let mut par = build();
        let par_out = par.repair_with(
            RepairRequest::RetroactivePatch {
                patch: redirect_patch,
                from_time: 0,
            },
            RepairStrategy::Partitioned { workers: 2 },
        );
        assert!(
            par_out.stats.escalations >= 1,
            "cross-partition write must escalate"
        );
        assert_eq!(seq_out.reexecuted_actions, par_out.reexecuted_actions);
        assert_equivalent(&seq, &par, "escalation");
    }

    #[test]
    fn partitioned_undo_visit_matches_sequential() {
        use warp_browser::Browser;
        let build = || {
            let mut server = WarpServer::new(notes_app(3));
            let mut admin = Browser::new("admin");
            let mut visit = admin.visit("/read.wasl?topic=t0", &mut server);
            let _ = &mut visit;
            server.handle(warp_http::HttpRequest::post(
                "/post.wasl",
                [("topic", "t1"), ("body", "independent")],
            ));
            let mut user = Browser::new("user");
            let v = user.visit("/read.wasl?topic=t2", &mut server);
            server.upload_client_logs(admin.take_logs());
            server.upload_client_logs(user.take_logs());
            (server, v.visit_id)
        };
        let (mut seq, visit_id) = build();
        let seq_out = seq.repair(RepairRequest::UndoVisit {
            client_id: "user".into(),
            visit_id,
            initiated_by_admin: true,
        });
        let (mut par, visit_id) = build();
        let par_out = par.repair_with(
            RepairRequest::UndoVisit {
                client_id: "user".into(),
                visit_id,
                initiated_by_admin: true,
            },
            RepairStrategy::Partitioned { workers: 2 },
        );
        assert_eq!(seq_out.cancelled_actions, par_out.cancelled_actions);
        assert!(!par_out.cancelled_actions.is_empty());
        assert_equivalent(&seq, &par, "undo");
    }

    /// A two-table app: notes partitioned by topic, plus an audit table
    /// written by its own script — so worker footprints genuinely differ
    /// per table.
    fn two_table_app(topics: usize) -> AppConfig {
        let mut config = notes_app(topics);
        config.add_table(
            "CREATE TABLE audit (audit_id INTEGER PRIMARY KEY, who TEXT, what TEXT)",
            TableAnnotation::new()
                .row_id("audit_id")
                .partitions(["who"]),
        );
        config.seed("INSERT INTO audit (audit_id, who, what) VALUES (1, 'admin', 'installed')");
        config.add_source(
            "audit.wasl",
            "db_query(\"INSERT INTO audit (audit_id, who, what) VALUES (\" . param(\"id\") . \", '\" . sql_escape(param(\"who\")) . \"', '\" . sql_escape(param(\"what\")) . \"')\"); echo(\"ok\");",
        );
        config
    }

    fn two_table_traffic(server: &mut WarpServer, topics: usize) {
        use warp_http::HttpRequest;
        for t in 0..topics {
            server.handle(HttpRequest::post(
                "/post.wasl",
                [
                    ("topic", format!("t{t}").as_str()),
                    ("body", format!("note for {t}").as_str()),
                ],
            ));
            server.handle(HttpRequest::get(&format!("/read.wasl?topic=t{t}")));
            server.handle(HttpRequest::post(
                "/audit.wasl",
                [
                    ("id", format!("{}", t + 10).as_str()),
                    ("who", format!("user{t}").as_str()),
                    ("what", "posted"),
                ],
            ));
        }
    }

    #[test]
    fn bounded_memory_clones_match_full_clones() {
        let topics = 4;
        let run = |strategy: RepairStrategy| {
            let mut server = WarpServer::new(two_table_app(topics));
            two_table_traffic(&mut server, topics);
            let out = server.repair_with(
                RepairRequest::RetroactivePatch {
                    patch: notes_patch(),
                    from_time: 0,
                },
                strategy,
            );
            (server, out)
        };
        let (mut seq, seq_out) = run(RepairStrategy::Sequential);
        let (mut full, full_out) = run(RepairStrategy::PartitionedFullClone { workers: 3 });
        let (mut bounded, bounded_out) = run(RepairStrategy::Partitioned { workers: 3 });
        assert_eq!(
            full.db.canonical_dump(),
            bounded.db.canonical_dump(),
            "footprint clones and full clones must produce identical repairs"
        );
        assert_eq!(seq.db.canonical_dump(), bounded.db.canonical_dump());
        assert_eq!(seq_out.reexecuted_actions, bounded_out.reexecuted_actions);
        assert_eq!(full_out.reexecuted_actions, bounded_out.reexecuted_actions);
        assert_eq!(full_out.cancelled_actions, bounded_out.cancelled_actions);
        // The patch stays inside the notes footprint: no fallback round.
        assert_eq!(bounded_out.stats.bounded_clone_fallbacks, 0);
        assert_eq!(full_out.stats.bounded_clone_fallbacks, 0);
    }

    #[test]
    fn out_of_footprint_write_falls_back_to_full_clones_and_stays_correct() {
        // The patched post.wasl also writes the audit table — a table that
        // appears in no notes partition's recorded footprint, so bounded
        // clones must detect the escape and re-run the round on full clones.
        let cross_table_patch = Patch::new(
            "post.wasl",
            "db_query(\"UPDATE note SET body = 'P: \" . sql_escape(param(\"body\")) . \"' \
             WHERE topic = '\" . sql_escape(param(\"topic\")) . \"'\"); \
             db_query(\"UPDATE audit SET what = 'patched' WHERE who = 'admin'\"); echo(\"ok\");",
            "log patched posts to the audit table",
        );
        let run = |strategy: RepairStrategy| {
            let mut server = WarpServer::new(two_table_app(3));
            two_table_traffic(&mut server, 3);
            let out = server.repair_with(
                RepairRequest::RetroactivePatch {
                    patch: cross_table_patch.clone(),
                    from_time: 0,
                },
                strategy,
            );
            (server, out)
        };
        let (mut seq, _) = run(RepairStrategy::Sequential);
        let (mut bounded, bounded_out) = run(RepairStrategy::Partitioned { workers: 2 });
        assert!(
            bounded_out.stats.bounded_clone_fallbacks >= 1,
            "the cross-table write must force a full-clone fallback"
        );
        assert_eq!(
            seq.db.canonical_dump(),
            bounded.db.canonical_dump(),
            "fallback must preserve equivalence with the sequential engine"
        );
    }

    /// A notes app whose only unique constraint is the partition column
    /// itself (`topic` doubles as the row ID), so partition-scoped clones
    /// are sound for it and the partition-level path genuinely runs.
    fn hub_app(topics: usize) -> AppConfig {
        let mut config = AppConfig::new("hub-notes");
        config.add_table(
            "CREATE TABLE note (topic TEXT UNIQUE, body TEXT)",
            TableAnnotation::new().row_id("topic").partitions(["topic"]),
        );
        for t in 0..topics {
            config.seed(format!(
                "INSERT INTO note (topic, body) VALUES ('t{t}', 'seed {t}')"
            ));
        }
        config.add_source(
            "post.wasl",
            "db_query(\"UPDATE note SET body = '\" . sql_escape(param(\"body\")) . \"' \
             WHERE topic = '\" . sql_escape(param(\"topic\")) . \"'\"); echo(\"ok\");",
        );
        config.add_source(
            "read.wasl",
            "let rows = db_query(\"SELECT body FROM note WHERE topic = '\" . sql_escape(param(\"topic\")) . \"'\"); \
             if (len(rows) > 0) { echo(rows[0][\"body\"]); } else { echo(\"none\"); }",
        );
        config
    }

    /// The "whole-table-hub" shape: every partition lives in one hot table,
    /// so table-level footprint clones would copy the entire table into
    /// every batch. Partition-level clones copy only each batch's
    /// partitions — and must still produce repairs identical to full
    /// clones and the sequential engine.
    #[test]
    fn partition_level_clones_match_full_clones_on_a_single_table_hub() {
        let topics = 6;
        let run = |strategy: RepairStrategy| {
            let mut server = WarpServer::new(hub_app(topics));
            notes_traffic(&mut server, topics);
            assert!(server.db.partition_clone_safe("note"));
            let out = server.repair_with(
                RepairRequest::RetroactivePatch {
                    patch: notes_patch(),
                    from_time: 0,
                },
                strategy,
            );
            (server, out)
        };
        let (mut seq, seq_out) = run(RepairStrategy::Sequential);
        let (mut full, full_out) = run(RepairStrategy::PartitionedFullClone { workers: 3 });
        let (mut bounded, bounded_out) = run(RepairStrategy::Partitioned { workers: 3 });
        assert_eq!(full.db.canonical_dump(), bounded.db.canonical_dump());
        assert_eq!(seq.db.canonical_dump(), bounded.db.canonical_dump());
        assert_eq!(seq_out.reexecuted_actions, bounded_out.reexecuted_actions);
        assert_eq!(full_out.reexecuted_actions, bounded_out.reexecuted_actions);
        assert_eq!(full_out.cancelled_actions, bounded_out.cancelled_actions);
        // The patch stays inside each topic partition: no fallback round.
        assert_eq!(bounded_out.stats.bounded_clone_fallbacks, 0);
    }

    /// A table partitioned by `grp` whose PRIMARY KEY (`id`) is *not* a
    /// partition column: a partition-scoped clone could miss a
    /// cross-partition id collision (the colliding row is never a recorded
    /// dependency, so no fallback would fire), so the scheduler must widen
    /// such tables to whole-table clones — and the repair must stay
    /// identical to full clones and the sequential engine even when
    /// patched code manufactures exactly that collision.
    #[test]
    fn cross_partition_unique_collision_matches_full_clones() {
        let build = || {
            let mut config = AppConfig::new("uniq");
            config.add_table(
                "CREATE TABLE item (id INTEGER PRIMARY KEY, grp TEXT, val TEXT)",
                TableAnnotation::new().row_id("id").partitions(["grp"]),
            );
            config.add_source(
                "add.wasl",
                "db_query(\"INSERT INTO item (id, grp, val) VALUES (\" . param(\"id\") . \", '\" . sql_escape(param(\"grp\")) . \"', '\" . sql_escape(param(\"val\")) . \"')\"); echo(\"ok\");",
            );
            let mut server = WarpServer::new(config);
            assert!(!server.db.partition_clone_safe("item"));
            use warp_http::HttpRequest;
            server.handle(HttpRequest::post(
                "/add.wasl",
                [("id", "1"), ("grp", "g0"), ("val", "a")],
            ));
            server.handle(HttpRequest::post(
                "/add.wasl",
                [("id", "2"), ("grp", "g1"), ("val", "b")],
            ));
            server
        };
        // The patch rewrites g0's insert to reuse id 2 — colliding with
        // g1's row, which lives in a different partition.
        let collide_patch = Patch::new(
            "add.wasl",
            "let id = param(\"id\"); if (param(\"grp\") == \"g0\") { id = \"2\"; } \
             db_query(\"INSERT INTO item (id, grp, val) VALUES (\" . id . \", '\" . sql_escape(param(\"grp\")) . \"', '\" . sql_escape(param(\"val\")) . \"')\"); echo(\"ok\");",
            "redirect g0 ids onto g1's",
        );
        let run = |strategy: RepairStrategy| {
            let mut server = build();
            let out = server.repair_with(
                RepairRequest::RetroactivePatch {
                    patch: collide_patch.clone(),
                    from_time: 0,
                },
                strategy,
            );
            (server, out)
        };
        let (mut seq, seq_out) = run(RepairStrategy::Sequential);
        let (mut full, _) = run(RepairStrategy::PartitionedFullClone { workers: 2 });
        let (mut bounded, bounded_out) = run(RepairStrategy::Partitioned { workers: 2 });
        assert_eq!(
            seq.db.canonical_dump(),
            bounded.db.canonical_dump(),
            "a cross-partition unique collision must repair identically"
        );
        assert_eq!(full.db.canonical_dump(), bounded.db.canonical_dump());
        assert_eq!(seq_out.reexecuted_actions, bounded_out.reexecuted_actions);
        // Exactly one id=2 row may survive, whichever way the collision
        // resolved.
        let rows = bounded.db.table_rows_snapshot("item");
        let id2_current = rows
            .iter()
            .filter(|r| r.first() == Some(&Value::Int(2)))
            .count();
        assert!(id2_current >= 1, "id 2 must exist: {rows:?}");
    }

    #[test]
    fn scope_containment_is_partition_precise() {
        use warp_ttdb::PartitionKey;
        let key = |v: &str| PartitionKey::new("note", "topic", &Value::text(v));
        let mut scope = BTreeMap::new();
        widen_scope(
            &mut scope,
            &PartitionSet::Keys([key("t0"), key("t1")].into_iter().collect()),
        );
        assert!(scope_contains(
            &scope,
            &PartitionSet::Keys([key("t1")].into_iter().collect())
        ));
        assert!(!scope_contains(
            &scope,
            &PartitionSet::Keys([key("t2")].into_iter().collect())
        ));
        // A whole-table dependency needs a whole-table scope.
        assert!(!scope_contains(&scope, &PartitionSet::whole("note")));
        widen_scope(&mut scope, &PartitionSet::whole("note"));
        assert!(scope_contains(&scope, &PartitionSet::whole("note")));
        assert!(scope_contains(
            &scope,
            &PartitionSet::Keys([key("t5")].into_iter().collect())
        ));
        // Other tables stay out of scope; empty sets are always contained.
        assert!(!scope_contains(&scope, &PartitionSet::whole("audit")));
        assert!(scope_contains(&scope, &PartitionSet::empty()));
    }
}
