//! Persistence: the server's durable action log, checkpoints and recovery.
//!
//! `warp-store` provides the byte-level machinery (backends, the segmented
//! checksummed log, checkpoint blobs, compaction); this module defines what
//! Warp actually stores in it and how a byte-identical [`WarpServer`] is
//! rebuilt after a crash.
//!
//! # What is logged
//!
//! Every state transition of a persistent server appends one record:
//!
//! * `LogEvent::Action` — one handled HTTP request: the full
//!   [`ActionRecord`] (request, response, dependencies, non-determinism)
//!   plus the generation it executed in and the clock / RNG / session /
//!   synthetic-row-ID counters after it. Replaying the record re-executes
//!   the action's *write* queries at their original times, which rebuilds
//!   the time-travel database's row versions exactly (normal-execution
//!   writes are deterministic given SQL text, time and generation).
//! * `LogEvent::ClientLog` — an uploaded browser page-visit log.
//! * `LogEvent::RepairBegin` / `LogEvent::RepairCommit` /
//!   `LogEvent::RepairAbort` — repair is *not* replayed on recovery
//!   (re-running it would need patched sources and browser replay mid
//!   recovery); instead the commit record carries the repair's physical
//!   effect: per-table row-version deltas (produced by the time-travel
//!   database's mutation tracker at O(rows changed) — the repair data path
//!   never snapshots or diffs whole tables), the cancelled-action set, the
//!   queued conflicts, cookie invalidations and the new generation. A
//!   `RepairBegin` with no matching commit or abort marks an interrupted
//!   repair; recovery surfaces it as [`WarpServer::pending_repair`] so the
//!   administrator can re-run it.
//! * `LogEvent::Gc` — a garbage-collection cut-off, replayed as-is (GC
//!   renumbers action IDs, so it must happen at the same point of the
//!   replayed history).
//! * `LogEvent::CreateTable` — a table installed after initial deployment.
//!
//! # Recovery
//!
//! [`WarpServer::open`] installs the application fresh (schema, seeds,
//! sources — all deterministic), restores the newest checkpoint if one
//! exists, then replays the log tail. Recovery therefore assumes the same
//! [`AppConfig`] the original server ran with, which is the same contract a
//! real deployment has with its schema migrations.

use crate::config::{AppConfig, ServerConfig};
use crate::conflict::{Conflict, ConflictKind};
use crate::history::{ActionId, ActionRecord, ClientRef, HistoryGraph, NondetRecord, QueryRecord};
use crate::repair::RepairRequest;
use crate::server::WarpServer;
use crate::sourcefs::Patch;
use std::collections::BTreeMap;
use warp_browser::{ConflictReason, EventKind, PageVisitRecord, RecordedEvent, RecordedRequest};
use warp_http::{CookieJar, HttpRequest, HttpResponse, Method, WarpHeaders};
use warp_script::Value as ScriptValue;
use warp_sql::ColumnSet;
use warp_sql::Value as SqlValue;
use warp_store::{CodecError, Decoder, DurableStore, Encoder, StoreError, StoreResult};
use warp_ttdb::{PartitionKey, PartitionSet, QueryDependency, TableAnnotation};

/// Version stamp of the checkpoint payload and record encodings. Bump on
/// any incompatible change; recovery refuses newer formats loudly instead
/// of misreading them.
pub const FORMAT_VERSION: u32 = 1;

const KIND_ACTION: u8 = 1;
const KIND_CLIENT_LOG: u8 = 2;
const KIND_REPAIR_BEGIN: u8 = 3;
const KIND_REPAIR_COMMIT: u8 = 4;
const KIND_REPAIR_ABORT: u8 = 5;
const KIND_GC: u8 = 6;
const KIND_CREATE_TABLE: u8 = 7;

/// One record of the durable action log.
#[derive(Debug, Clone)]
pub(crate) enum LogEvent {
    /// A handled request, with the counter state after it.
    Action {
        /// Generation the action executed in.
        gen: i64,
        /// Logical clock after the action completed.
        clock_after: i64,
        /// RNG counter after the action.
        rng_after: u64,
        /// Session counter after the action.
        session_after: u64,
        /// Synthetic row-ID watermark after the action.
        watermark_after: i64,
        /// The recorded action.
        action: Box<ActionRecord>,
    },
    /// An uploaded client browser log.
    ClientLog(PageVisitRecord),
    /// A repair started (crash marker; carries the request for redo).
    RepairBegin(RepairRequest),
    /// A repair committed; carries its complete physical effect.
    RepairCommit(RepairCommitRecord),
    /// A repair aborted (only the side effects that survive an abort).
    RepairAbort {
        /// The retroactive patch, which stays applied to the source store
        /// even when the repair aborts.
        patch: Option<(Patch, i64)>,
        /// Cookie invalidations queued despite the abort.
        cookie_invalidations: Vec<String>,
    },
    /// History and version garbage collection ran with this cut-off.
    Gc {
        /// The GC cut-off time.
        before_time: i64,
    },
    /// A table was installed after initial deployment.
    CreateTable {
        /// The application's `CREATE TABLE` statement.
        sql: String,
        /// The table's Warp annotation.
        annotation: TableAnnotation,
    },
}

/// One table's row-version delta: `(table, removed rows, added rows)`.
pub(crate) type TableDiff = (String, Vec<Vec<SqlValue>>, Vec<Vec<SqlValue>>);

/// The physical effect of a committed repair.
#[derive(Debug, Clone, Default)]
pub(crate) struct RepairCommitRecord {
    /// The retroactive patch the repair applied, if any.
    pub patch: Option<(Patch, i64)>,
    /// Actions cancelled by the repair.
    pub cancelled: Vec<ActionId>,
    /// Conflicts queued for users.
    pub conflicts: Vec<Conflict>,
    /// Clients whose cookies must be invalidated.
    pub cookie_invalidations: Vec<String>,
    /// The generation that became current when the repair finalized.
    pub current_gen: i64,
    /// The synthetic row-ID watermark after the repair.
    pub watermark: i64,
    /// Per-table row-version deltas `(table, removed rows, added rows)`
    /// turning the pre-repair stored rows into the post-repair rows.
    pub table_diffs: Vec<TableDiff>,
}

/// What [`WarpServer::open`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// True if any persisted state (checkpoint or log records) was applied.
    pub recovered: bool,
    /// True if a checkpoint was restored (rather than replaying from the
    /// initial installation).
    pub from_checkpoint: bool,
    /// Log records replayed after the checkpoint.
    pub records_replayed: usize,
    /// True if a torn final record was found and truncated.
    pub torn_tail: bool,
    /// True if an interrupted repair was detected; see
    /// [`WarpServer::pending_repair`].
    pub pending_repair: bool,
}

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

/// What changed since the last checkpoint, beyond what the database's
/// mutation tracker captures: the bookkeeping the server keeps so an
/// incremental checkpoint can be encoded without walking the full state.
///
/// Row changes are tracked by the time-travel database itself
/// ([`warp_ttdb::TimeTravelDb::drain_checkpoint_delta`]); everything here is
/// the history-graph side — which actions are new (a floor index, since
/// action IDs are append-order indices), which old actions were cancelled by
/// a repair, which client logs arrived, which tables were installed.
#[derive(Debug, Clone, Default)]
pub(crate) struct CheckpointMarks {
    /// History length at the last checkpoint; `actions()[floor..]` are new.
    pub actions_floor: usize,
    /// Actions below the floor whose `cancelled` flag flipped since (repair
    /// commits mutate history in place).
    pub cancelled: Vec<ActionId>,
    /// `(client_id, visit_id)` of client logs uploaded since.
    pub new_logs: Vec<(String, u64)>,
    /// Tables installed since — their schema must ride in the next delta,
    /// even with zero row changes, or a fold would lose the `CREATE TABLE`.
    pub new_tables: Vec<String>,
    /// The next automatic checkpoint must be a full base. Set when action
    /// IDs are renumbered (GC), which invalidates the floor/ID bookkeeping.
    pub needs_base: bool,
}

// ---------------------------------------------------------------------------
// The log sink: where a persistent server's records go
// ---------------------------------------------------------------------------

/// Where a persistent server's log records go.
///
/// The classic synchronous path ([`WarpServer`] used directly) appends to
/// the [`DurableStore`] inline: every record is durable before the call
/// that produced it returns. The concurrent façade ([`crate::Warp`]) moves
/// the store onto a background [`warp_store::GroupCommitWriter`] thread so
/// appends leave the request path; durability is then signalled through
/// [`LogSink::notify_durable`] callbacks, which the writer runs only after
/// every record submitted before them has been appended.
#[derive(Debug)]
pub(crate) enum LogSink {
    /// Synchronous appends straight into the store.
    Inline(DurableStore),
    /// Asynchronous appends through the group-commit writer thread.
    Writer {
        writer: warp_store::GroupCommitWriter,
        /// Records submitted since the last checkpoint. The writer owns the
        /// store, so the engine tracks the checkpoint cadence itself to
        /// avoid a message round-trip per action.
        since_checkpoint: u64,
        /// [`StoreOptions::checkpoint_interval`] captured before the store
        /// moved onto the writer thread.
        checkpoint_interval: u64,
        /// Delta links written since the last base, mirrored from the store
        /// for the same reason as `since_checkpoint`.
        deltas_since_base: usize,
        /// [`StoreOptions::fold_after_deltas`] captured before the store
        /// moved onto the writer thread.
        fold_after_deltas: usize,
    },
}

impl LogSink {
    /// Appends one encoded record.
    ///
    /// # Panics
    ///
    /// Panics if the inline backend fails; the writer thread enforces the
    /// same contract asynchronously (it panics, and the next durability
    /// interaction with it propagates the failure).
    pub(crate) fn append(&mut self, kind: u8, payload: Vec<u8>) {
        match self {
            LogSink::Inline(store) => {
                store
                    .append(kind, &payload)
                    .unwrap_or_else(|e| panic!("durable log append failed: {e}"));
            }
            LogSink::Writer {
                writer,
                since_checkpoint,
                ..
            } => {
                writer.submit(kind, payload);
                *since_checkpoint += 1;
            }
        }
    }

    /// Runs `f` once every record appended before this call is durable —
    /// immediately for the inline sink (appends are synchronous), after the
    /// covering batch commits for the writer sink.
    pub(crate) fn notify_durable(&self, f: impl FnOnce() + Send + 'static) {
        match self {
            LogSink::Inline(_) => f(),
            LogSink::Writer { writer, .. } => writer.notify_durable(f),
        }
    }

    /// Blocks until everything appended so far is durable (no-op inline).
    pub(crate) fn flush(&self) {
        if let LogSink::Writer { writer, .. } = self {
            writer.flush();
        }
    }

    /// True once the checkpoint interval has elapsed.
    pub(crate) fn checkpoint_due(&self) -> bool {
        match self {
            LogSink::Inline(store) => store.checkpoint_due(),
            LogSink::Writer {
                since_checkpoint,
                checkpoint_interval,
                ..
            } => *checkpoint_interval > 0 && *since_checkpoint >= *checkpoint_interval,
        }
    }

    /// Writes a checkpoint (flushing pending records first on the writer
    /// path) and compacts the log.
    pub(crate) fn write_checkpoint(&mut self, payload: Vec<u8>) {
        match self {
            LogSink::Inline(store) => {
                store
                    .write_checkpoint(&payload)
                    .unwrap_or_else(|e| panic!("checkpoint write failed: {e}"));
            }
            LogSink::Writer {
                writer,
                since_checkpoint,
                deltas_since_base,
                ..
            } => {
                writer.write_checkpoint(payload);
                *since_checkpoint = 0;
                *deltas_since_base = 0;
            }
        }
    }

    /// Writes a delta checkpoint chained onto the current tip (flushing
    /// pending records first on the writer path). Returns `false` when the
    /// store declined because no records landed since the last checkpoint —
    /// in which case nothing could have changed and the payload was empty
    /// anyway (every server state transition appends a record).
    pub(crate) fn write_delta_checkpoint(&mut self, payload: Vec<u8>) -> bool {
        match self {
            LogSink::Inline(store) => store
                .write_delta_checkpoint(&payload)
                .unwrap_or_else(|e| panic!("delta checkpoint write failed: {e}"))
                .is_some(),
            LogSink::Writer {
                writer,
                since_checkpoint,
                deltas_since_base,
                ..
            } => {
                let written = writer.write_delta_checkpoint(payload).is_some();
                *since_checkpoint = 0;
                if written {
                    *deltas_since_base += 1;
                }
                written
            }
        }
    }

    /// True once any checkpoint chain exists on disk (a delta needs a
    /// parent to name). A message round-trip on the writer path — callers
    /// are on the checkpoint cadence, not the per-record path.
    pub(crate) fn has_checkpoint(&self) -> bool {
        match self {
            LogSink::Inline(store) => store.has_checkpoint(),
            LogSink::Writer { writer, .. } => writer.has_checkpoint(),
        }
    }

    /// True once the delta chain is long enough that the next automatic
    /// checkpoint should fold it into a fresh base (the inline fallback for
    /// servers running without a background maintenance worker).
    pub(crate) fn should_fold(&self) -> bool {
        match self {
            LogSink::Inline(store) => {
                let fold = store.options().fold_after_deltas;
                fold > 0 && store.deltas_since_base() >= fold
            }
            LogSink::Writer {
                deltas_since_base,
                fold_after_deltas,
                ..
            } => *fold_after_deltas > 0 && *deltas_since_base >= *fold_after_deltas,
        }
    }

    /// Deletes every cold blob, returning bytes freed. Best-effort: cold
    /// blobs are an archival tier, so a backend hiccup here is not fatal.
    pub(crate) fn prune_cold(&mut self) -> u64 {
        match self {
            LogSink::Inline(store) => store.prune_cold_blobs().unwrap_or(0),
            LogSink::Writer { writer, .. } => writer.prune_cold_blobs(),
        }
    }

    /// Bytes currently held by the backend (segments + checkpoints).
    pub(crate) fn total_bytes(&self) -> u64 {
        match self {
            LogSink::Inline(store) => store.total_bytes().unwrap_or(0),
            LogSink::Writer { writer, .. } => writer.total_bytes(),
        }
    }

    /// The writer's batching counters (zeroes for the inline sink).
    pub(crate) fn writer_stats(&self) -> warp_store::WriterStats {
        match self {
            LogSink::Inline(_) => warp_store::WriterStats::default(),
            LogSink::Writer { writer, .. } => writer.stats(),
        }
    }

    /// The durable LSN watermark: the next LSN to be assigned, with every
    /// record below it on disk. On the writer path this flushes first, so
    /// the returned watermark covers everything appended before the call.
    pub(crate) fn durable_lsn(&self) -> u64 {
        match self {
            LogSink::Inline(store) => store.next_lsn(),
            LogSink::Writer { writer, .. } => writer.durable_lsn(),
        }
    }
}

// ---------------------------------------------------------------------------
// Encoders / decoders for the persisted types
// ---------------------------------------------------------------------------

type DecResult<T> = Result<T, CodecError>;

fn bad(msg: impl Into<String>) -> CodecError {
    CodecError(msg.into())
}

fn enc_string_map(e: &mut Encoder, map: &BTreeMap<String, String>) {
    e.u32(map.len() as u32);
    for (k, v) in map {
        e.str(k);
        e.str(v);
    }
}

fn dec_string_map(d: &mut Decoder) -> DecResult<BTreeMap<String, String>> {
    let n = d.u32()?;
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let k = d.str()?;
        let v = d.str()?;
        map.insert(k, v);
    }
    Ok(map)
}

fn enc_sql_value(e: &mut Encoder, v: &SqlValue) {
    match v {
        SqlValue::Null => e.u8(0),
        SqlValue::Bool(b) => {
            e.u8(1);
            e.bool(*b);
        }
        SqlValue::Int(i) => {
            e.u8(2);
            e.i64(*i);
        }
        SqlValue::Float(f) => {
            e.u8(3);
            e.f64(*f);
        }
        SqlValue::Text(s) => {
            e.u8(4);
            e.str(s);
        }
    }
}

fn dec_sql_value(d: &mut Decoder) -> DecResult<SqlValue> {
    Ok(match d.u8()? {
        0 => SqlValue::Null,
        1 => SqlValue::Bool(d.bool()?),
        2 => SqlValue::Int(d.i64()?),
        3 => SqlValue::Float(d.f64()?),
        4 => SqlValue::Text(d.str()?),
        t => return Err(bad(format!("unknown SQL value tag {t}"))),
    })
}

fn enc_row(e: &mut Encoder, row: &[SqlValue]) {
    e.seq(row, enc_sql_value);
}

fn dec_row(d: &mut Decoder) -> DecResult<Vec<SqlValue>> {
    d.seq(dec_sql_value)
}

fn enc_script_value(e: &mut Encoder, v: &ScriptValue) {
    match v {
        ScriptValue::Null => e.u8(0),
        ScriptValue::Bool(b) => {
            e.u8(1);
            e.bool(*b);
        }
        ScriptValue::Int(i) => {
            e.u8(2);
            e.i64(*i);
        }
        ScriptValue::Float(f) => {
            e.u8(3);
            e.f64(*f);
        }
        ScriptValue::Str(s) => {
            e.u8(4);
            e.str(s);
        }
        ScriptValue::Array(items) => {
            e.u8(5);
            e.seq(items, enc_script_value);
        }
        ScriptValue::Map(map) => {
            e.u8(6);
            e.u32(map.len() as u32);
            for (k, v) in map {
                e.str(k);
                enc_script_value(e, v);
            }
        }
    }
}

fn dec_script_value(d: &mut Decoder) -> DecResult<ScriptValue> {
    Ok(match d.u8()? {
        0 => ScriptValue::Null,
        1 => ScriptValue::Bool(d.bool()?),
        2 => ScriptValue::Int(d.i64()?),
        3 => ScriptValue::Float(d.f64()?),
        4 => ScriptValue::Str(d.str()?),
        5 => ScriptValue::Array(d.seq(dec_script_value)?),
        6 => {
            let n = d.u32()?;
            let mut map = BTreeMap::new();
            for _ in 0..n {
                let k = d.str()?;
                let v = dec_script_value(d)?;
                map.insert(k, v);
            }
            ScriptValue::Map(map)
        }
        t => return Err(bad(format!("unknown script value tag {t}"))),
    })
}

fn enc_method(e: &mut Encoder, m: &Method) {
    e.u8(match m {
        Method::Get => 0,
        Method::Post => 1,
    });
}

fn dec_method(d: &mut Decoder) -> DecResult<Method> {
    Ok(match d.u8()? {
        0 => Method::Get,
        1 => Method::Post,
        t => return Err(bad(format!("unknown HTTP method tag {t}"))),
    })
}

fn enc_request(e: &mut Encoder, r: &HttpRequest) {
    enc_method(e, &r.method);
    e.str(&r.path);
    enc_string_map(e, &r.query);
    enc_string_map(e, &r.form);
    enc_string_map(e, &r.headers);
    let cookies: Vec<(String, String)> = r
        .cookies
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    e.seq(&cookies, |e, (k, v)| {
        e.str(k);
        e.str(v);
    });
    e.option(r.warp.client_id.as_ref(), |e, s| e.str(s));
    e.option(r.warp.visit_id.as_ref(), |e, v| e.u64(*v));
    e.option(r.warp.request_id.as_ref(), |e, v| e.u64(*v));
}

fn dec_request(d: &mut Decoder) -> DecResult<HttpRequest> {
    let method = dec_method(d)?;
    let path = d.str()?;
    let query = dec_string_map(d)?;
    let form = dec_string_map(d)?;
    let headers = dec_string_map(d)?;
    let pairs = d.seq(|d| Ok((d.str()?, d.str()?)))?;
    let mut cookies = CookieJar::new();
    for (k, v) in pairs {
        cookies.set(k, v);
    }
    let warp = WarpHeaders {
        client_id: d.option(|d| d.str())?,
        visit_id: d.option(|d| d.u64())?,
        request_id: d.option(|d| d.u64())?,
    };
    let mut request = match method {
        Method::Get => HttpRequest::get(&path),
        Method::Post => HttpRequest::post(&path, []),
    };
    request.query = query;
    request.form = form;
    request.headers = headers;
    request.cookies = cookies;
    request.warp = warp;
    Ok(request)
}

fn enc_response(e: &mut Encoder, r: &HttpResponse) {
    e.u32(r.status as u32);
    enc_string_map(e, &r.headers);
    e.seq(&r.set_cookies, |e, s| e.str(s));
    e.str(&r.body);
}

fn dec_response(d: &mut Decoder) -> DecResult<HttpResponse> {
    let status = d.u32()? as u16;
    let headers = dec_string_map(d)?;
    let set_cookies = d.seq(|d| d.str())?;
    let body = d.str()?;
    let mut r = HttpResponse::ok(body);
    r.status = status;
    r.headers = headers;
    r.set_cookies = set_cookies;
    Ok(r)
}

fn enc_partition_set(e: &mut Encoder, p: &PartitionSet) {
    match p {
        PartitionSet::Whole { table } => {
            e.u8(0);
            e.str(table);
        }
        PartitionSet::Keys(keys) => {
            e.u8(1);
            let keys: Vec<&PartitionKey> = keys.iter().collect();
            e.seq(&keys, |e, k| {
                e.str(&k.table);
                e.str(&k.column);
                e.str(&k.value);
            });
        }
    }
}

fn dec_partition_set(d: &mut Decoder) -> DecResult<PartitionSet> {
    Ok(match d.u8()? {
        0 => PartitionSet::Whole { table: d.str()? },
        1 => {
            let keys = d.seq(|d| {
                Ok(PartitionKey {
                    table: d.str()?,
                    column: d.str()?,
                    value: d.str()?,
                })
            })?;
            PartitionSet::Keys(keys.into_iter().collect())
        }
        t => return Err(bad(format!("unknown partition set tag {t}"))),
    })
}

fn enc_column_set(e: &mut Encoder, c: &ColumnSet) {
    match c {
        ColumnSet::All => e.u8(0),
        ColumnSet::Named(names) => {
            e.u8(1);
            let names: Vec<&String> = names.iter().collect();
            e.seq(&names, |e, n| e.str(n));
        }
    }
}

fn dec_column_set(d: &mut Decoder) -> DecResult<ColumnSet> {
    Ok(match d.u8()? {
        0 => ColumnSet::All,
        1 => ColumnSet::Named(d.seq(|d| d.str())?.into_iter().collect()),
        t => return Err(bad(format!("unknown column set tag {t}"))),
    })
}

fn enc_dependency(e: &mut Encoder, dep: &QueryDependency) {
    e.str(&dep.table);
    e.bool(dep.is_read);
    e.bool(dep.is_write);
    enc_partition_set(e, &dep.read_partitions);
    enc_partition_set(e, &dep.write_partitions);
    e.seq(&dep.written_row_ids, enc_sql_value);
    enc_column_set(e, &dep.read_columns);
    enc_column_set(e, &dep.write_columns);
}

fn dec_dependency(d: &mut Decoder) -> DecResult<QueryDependency> {
    Ok(QueryDependency {
        table: d.str()?,
        is_read: d.bool()?,
        is_write: d.bool()?,
        read_partitions: dec_partition_set(d)?,
        write_partitions: dec_partition_set(d)?,
        written_row_ids: d.seq(dec_sql_value)?,
        read_columns: dec_column_set(d)?,
        write_columns: dec_column_set(d)?,
    })
}

fn enc_query_record(e: &mut Encoder, q: &QueryRecord) {
    e.str(&q.sql);
    e.i64(q.time);
    e.u64(q.result_fingerprint);
    e.bool(q.is_write);
    e.seq(&q.written_row_ids, enc_sql_value);
    enc_dependency(e, &q.dependency);
}

fn dec_query_record(d: &mut Decoder) -> DecResult<QueryRecord> {
    Ok(QueryRecord {
        sql: d.str()?,
        time: d.i64()?,
        result_fingerprint: d.u64()?,
        is_write: d.bool()?,
        written_row_ids: d.seq(dec_sql_value)?,
        dependency: dec_dependency(d)?,
    })
}

fn enc_nondet(e: &mut Encoder, n: &NondetRecord) {
    e.str(&n.func);
    e.seq(&n.args, enc_script_value);
    enc_script_value(e, &n.result);
}

fn dec_nondet(d: &mut Decoder) -> DecResult<NondetRecord> {
    Ok(NondetRecord {
        func: d.str()?,
        args: d.seq(dec_script_value)?,
        result: dec_script_value(d)?,
    })
}

fn enc_action(e: &mut Encoder, a: &ActionRecord) {
    e.u64(a.id);
    e.i64(a.time);
    enc_request(e, &a.request);
    enc_response(e, &a.response);
    e.option(a.client.as_ref(), |e, c| {
        e.str(&c.client_id);
        e.u64(c.visit_id);
        e.u64(c.request_id);
    });
    e.str(&a.entry_script);
    e.seq(&a.loaded_files, |e, f| e.str(f));
    e.seq(&a.queries, enc_query_record);
    e.seq(&a.nondet, enc_nondet);
    e.bool(a.cancelled);
}

fn dec_action(d: &mut Decoder) -> DecResult<ActionRecord> {
    Ok(ActionRecord {
        id: d.u64()?,
        time: d.i64()?,
        request: dec_request(d)?,
        response: dec_response(d)?,
        client: d.option(|d| {
            Ok(ClientRef {
                client_id: d.str()?,
                visit_id: d.u64()?,
                request_id: d.u64()?,
            })
        })?,
        entry_script: d.str()?,
        loaded_files: d.seq(|d| d.str())?,
        queries: d.seq(dec_query_record)?,
        nondet: d.seq(dec_nondet)?,
        cancelled: d.bool()?,
    })
}

fn enc_recorded_event(e: &mut Encoder, ev: &RecordedEvent) {
    e.u32(ev.seq);
    e.u8(match ev.kind {
        EventKind::Input => 0,
        EventKind::Click => 1,
        EventKind::Submit => 2,
    });
    e.str(&ev.target);
    e.option(ev.value.as_ref(), |e, s| e.str(s));
    e.option(ev.base_value.as_ref(), |e, s| e.str(s));
}

fn dec_recorded_event(d: &mut Decoder) -> DecResult<RecordedEvent> {
    Ok(RecordedEvent {
        seq: d.u32()?,
        kind: match d.u8()? {
            0 => EventKind::Input,
            1 => EventKind::Click,
            2 => EventKind::Submit,
            t => return Err(bad(format!("unknown event kind tag {t}"))),
        },
        target: d.str()?,
        value: d.option(|d| d.str())?,
        base_value: d.option(|d| d.str())?,
    })
}

fn enc_page_visit(e: &mut Encoder, v: &PageVisitRecord) {
    e.str(&v.client_id);
    e.u64(v.visit_id);
    e.str(&v.url);
    e.option(v.caused_by_visit.as_ref(), |e, c| e.u64(*c));
    e.bool(v.in_frame);
    e.seq(&v.events, enc_recorded_event);
    e.seq(&v.requests, |e, r| {
        e.u64(r.request_id);
        enc_method(e, &r.method);
        e.str(&r.path);
        enc_string_map(e, &r.params);
    });
}

fn dec_page_visit(d: &mut Decoder) -> DecResult<PageVisitRecord> {
    let client_id = d.str()?;
    let visit_id = d.u64()?;
    let url = d.str()?;
    let mut record = PageVisitRecord::new(&client_id, visit_id, &url);
    record.caused_by_visit = d.option(|d| d.u64())?;
    record.in_frame = d.bool()?;
    record.events = d.seq(dec_recorded_event)?;
    record.requests = d.seq(|d| {
        Ok(RecordedRequest {
            request_id: d.u64()?,
            method: dec_method(d)?,
            path: d.str()?,
            params: dec_string_map(d)?,
        })
    })?;
    Ok(record)
}

fn enc_patch(e: &mut Encoder, p: &Patch) {
    e.str(&p.filename);
    e.str(&p.patched_source);
    e.str(&p.description);
}

fn dec_patch(d: &mut Decoder) -> DecResult<Patch> {
    Ok(Patch {
        filename: d.str()?,
        patched_source: d.str()?,
        description: d.str()?,
    })
}

fn enc_repair_request(e: &mut Encoder, r: &RepairRequest) {
    match r {
        RepairRequest::RetroactivePatch { patch, from_time } => {
            e.u8(0);
            enc_patch(e, patch);
            e.i64(*from_time);
        }
        RepairRequest::UndoVisit {
            client_id,
            visit_id,
            initiated_by_admin,
        } => {
            e.u8(1);
            e.str(client_id);
            e.u64(*visit_id);
            e.bool(*initiated_by_admin);
        }
    }
}

fn dec_repair_request(d: &mut Decoder) -> DecResult<RepairRequest> {
    Ok(match d.u8()? {
        0 => RepairRequest::RetroactivePatch {
            patch: dec_patch(d)?,
            from_time: d.i64()?,
        },
        1 => RepairRequest::UndoVisit {
            client_id: d.str()?,
            visit_id: d.u64()?,
            initiated_by_admin: d.bool()?,
        },
        t => return Err(bad(format!("unknown repair request tag {t}"))),
    })
}

fn enc_conflict(e: &mut Encoder, c: &Conflict) {
    e.str(&c.client_id);
    e.u64(c.visit_id);
    e.str(&c.url);
    match &c.kind {
        ConflictKind::BrowserReplay(reason) => {
            e.u8(0);
            match reason {
                ConflictReason::NoClientLog => e.u8(0),
                ConflictReason::MissingTarget(s) => {
                    e.u8(1);
                    e.str(s);
                }
                ConflictReason::TextMergeConflict(s) => {
                    e.u8(2);
                    e.str(s);
                }
                ConflictReason::FramingDenied => e.u8(3),
            }
        }
        ConflictKind::ActionCancelled => e.u8(1),
        ConflictKind::ReexecutionFailed(msg) => {
            e.u8(2);
            e.str(msg);
        }
    }
    e.bool(c.resolved);
    e.option(c.partition.as_ref(), |e, p| e.u64(*p as u64));
}

fn dec_conflict(d: &mut Decoder) -> DecResult<Conflict> {
    let client_id = d.str()?;
    let visit_id = d.u64()?;
    let url = d.str()?;
    let kind = match d.u8()? {
        0 => ConflictKind::BrowserReplay(match d.u8()? {
            0 => ConflictReason::NoClientLog,
            1 => ConflictReason::MissingTarget(d.str()?),
            2 => ConflictReason::TextMergeConflict(d.str()?),
            3 => ConflictReason::FramingDenied,
            t => return Err(bad(format!("unknown conflict reason tag {t}"))),
        }),
        1 => ConflictKind::ActionCancelled,
        2 => ConflictKind::ReexecutionFailed(d.str()?),
        t => return Err(bad(format!("unknown conflict kind tag {t}"))),
    };
    let resolved = d.bool()?;
    let partition = d.option(|d| d.u64())?.map(|p| p as usize);
    Ok(Conflict {
        client_id,
        visit_id,
        url,
        kind,
        resolved,
        partition,
    })
}

fn enc_annotation(e: &mut Encoder, a: &TableAnnotation) {
    e.option(a.row_id_column.as_ref(), |e, s| e.str(s));
    e.seq(&a.partition_columns, |e, s| e.str(s));
}

fn dec_annotation(d: &mut Decoder) -> DecResult<TableAnnotation> {
    Ok(TableAnnotation {
        row_id_column: d.option(|d| d.str())?,
        partition_columns: d.seq(|d| d.str())?,
    })
}

impl LogEvent {
    /// `(record kind, encoded payload)` for the durable log.
    pub(crate) fn encode(&self) -> (u8, Vec<u8>) {
        let mut e = Encoder::new();
        let kind = match self {
            LogEvent::Action {
                gen,
                clock_after,
                rng_after,
                session_after,
                watermark_after,
                action,
            } => {
                e.i64(*gen);
                e.i64(*clock_after);
                e.u64(*rng_after);
                e.u64(*session_after);
                e.i64(*watermark_after);
                enc_action(&mut e, action);
                KIND_ACTION
            }
            LogEvent::ClientLog(record) => {
                enc_page_visit(&mut e, record);
                KIND_CLIENT_LOG
            }
            LogEvent::RepairBegin(request) => {
                enc_repair_request(&mut e, request);
                KIND_REPAIR_BEGIN
            }
            LogEvent::RepairCommit(commit) => {
                e.option(commit.patch.as_ref(), |e, (patch, from)| {
                    enc_patch(e, patch);
                    e.i64(*from);
                });
                e.seq(&commit.cancelled, |e, id| e.u64(*id));
                e.seq(&commit.conflicts, enc_conflict);
                e.seq(&commit.cookie_invalidations, |e, s| e.str(s));
                e.i64(commit.current_gen);
                e.i64(commit.watermark);
                e.seq(&commit.table_diffs, |e, (table, remove, add)| {
                    e.str(table);
                    e.seq(remove, |e, row| enc_row(e, row));
                    e.seq(add, |e, row| enc_row(e, row));
                });
                KIND_REPAIR_COMMIT
            }
            LogEvent::RepairAbort {
                patch,
                cookie_invalidations,
            } => {
                e.option(patch.as_ref(), |e, (patch, from)| {
                    enc_patch(e, patch);
                    e.i64(*from);
                });
                e.seq(cookie_invalidations, |e, s| e.str(s));
                KIND_REPAIR_ABORT
            }
            LogEvent::Gc { before_time } => {
                e.i64(*before_time);
                KIND_GC
            }
            LogEvent::CreateTable { sql, annotation } => {
                e.str(sql);
                enc_annotation(&mut e, annotation);
                KIND_CREATE_TABLE
            }
        };
        (kind, e.into_bytes())
    }

    /// Decodes one log record.
    pub(crate) fn decode(kind: u8, payload: &[u8]) -> DecResult<LogEvent> {
        let mut d = Decoder::new(payload);
        let event = match kind {
            KIND_ACTION => LogEvent::Action {
                gen: d.i64()?,
                clock_after: d.i64()?,
                rng_after: d.u64()?,
                session_after: d.u64()?,
                watermark_after: d.i64()?,
                action: Box::new(dec_action(&mut d)?),
            },
            KIND_CLIENT_LOG => LogEvent::ClientLog(dec_page_visit(&mut d)?),
            KIND_REPAIR_BEGIN => LogEvent::RepairBegin(dec_repair_request(&mut d)?),
            KIND_REPAIR_COMMIT => LogEvent::RepairCommit(RepairCommitRecord {
                patch: d.option(|d| Ok((dec_patch(d)?, d.i64()?)))?,
                cancelled: d.seq(|d| d.u64())?,
                conflicts: d.seq(dec_conflict)?,
                cookie_invalidations: d.seq(|d| d.str())?,
                current_gen: d.i64()?,
                watermark: d.i64()?,
                table_diffs: d.seq(|d| Ok((d.str()?, d.seq(dec_row)?, d.seq(dec_row)?)))?,
            }),
            KIND_REPAIR_ABORT => LogEvent::RepairAbort {
                patch: d.option(|d| Ok((dec_patch(d)?, d.i64()?)))?,
                cookie_invalidations: d.seq(|d| d.str())?,
            },
            KIND_GC => LogEvent::Gc {
                before_time: d.i64()?,
            },
            KIND_CREATE_TABLE => LogEvent::CreateTable {
                sql: d.str()?,
                annotation: dec_annotation(&mut d)?,
            },
            t => return Err(bad(format!("unknown log record kind {t}"))),
        };
        d.finish()?;
        Ok(event)
    }
}

// ---------------------------------------------------------------------------
// Checkpoints: the complete server state in one blob
// ---------------------------------------------------------------------------

fn encode_checkpoint(server: &WarpServer) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u32(FORMAT_VERSION);
    e.i64(server.clock.now());
    e.u64(server.rng_counter);
    e.u64(server.session_counter);
    e.i64(server.db.current_generation());
    e.i64(server.db.synthetic_id_watermark());
    // An unresumed interrupted repair must survive the checkpoint: writing
    // the checkpoint compacts away the RepairBegin record that marks it.
    e.option(server.pending_repair.as_ref(), enc_repair_request);
    let invalidations: Vec<String> = server
        .pending_cookie_invalidations
        .iter()
        .cloned()
        .collect();
    e.seq(&invalidations, |e, s| e.str(s));
    e.seq(server.conflicts.all(), enc_conflict);
    e.seq(
        &server.sources.export_versions(),
        |e, (name, time, content, retro)| {
            e.str(name);
            e.i64(*time);
            e.str(content);
            e.bool(*retro);
        },
    );
    // History: quota, actions, then uploaded client logs.
    e.u64(server.history.client_log_quota_bytes as u64);
    e.seq(server.history.actions(), enc_action);
    let mut logs: Vec<&PageVisitRecord> = Vec::new();
    for client in server.history.client_ids() {
        logs.extend(server.history.client_visits(&client));
    }
    e.u32(logs.len() as u32);
    for log in logs {
        enc_page_visit(&mut e, log);
    }
    // Database: per table, the create statement, annotation, schema column
    // names (validated on restore) and every stored version row.
    let tables = server.db.table_create_statements();
    e.u32(tables.len() as u32);
    for (name, create_sql, annotation) in &tables {
        e.str(name);
        e.str(create_sql);
        enc_annotation(&mut e, annotation);
        let columns: Vec<String> = server
            .db
            .raw()
            .schema(name)
            .map(|s| s.columns.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default();
        e.seq(&columns, |e, c| e.str(c));
        let rows = server.db.table_rows_snapshot(name);
        e.seq(&rows, |e, row| enc_row(e, row));
    }
    e.into_bytes()
}

fn restore_checkpoint(server: &mut WarpServer, payload: &[u8]) -> StoreResult<()> {
    let mut d = Decoder::new(payload);
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(corrupt(format!(
            "checkpoint format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let clock = d.i64()?;
    server.rng_counter = d.u64()?;
    server.session_counter = d.u64()?;
    let current_gen = d.i64()?;
    let watermark = d.i64()?;
    server.pending_repair = d.option(dec_repair_request)?;
    let invalidations = d.seq(|d| d.str())?;
    let conflicts = d.seq(dec_conflict)?;
    let sources = d.seq(|d| Ok((d.str()?, d.i64()?, d.str()?, d.bool()?)))?;
    server.sources = crate::sourcefs::SourceStore::import_versions(sources);
    let quota = d.u64()? as usize;
    let actions = d.seq(dec_action)?;
    let mut history = HistoryGraph::new();
    history.client_log_quota_bytes = quota;
    for action in actions {
        let expected = action.id;
        let assigned = history.record_action(action);
        if assigned != expected {
            return Err(corrupt(format!(
                "checkpoint action {expected} restored with ID {assigned}"
            )));
        }
    }
    let n_logs = d.u32()?;
    for _ in 0..n_logs {
        history.upload_client_log(dec_page_visit(&mut d)?);
    }
    server.history = history;
    let n_tables = d.u32()?;
    for _ in 0..n_tables {
        let name = d.str()?;
        let create_sql = d.str()?;
        let annotation = dec_annotation(&mut d)?;
        let columns = d.seq(|d| d.str())?;
        let rows = d.seq(dec_row)?;
        if server.db.row_id_column(&name).is_none() {
            server
                .db
                .create_table(&create_sql, annotation)
                .map_err(|e| corrupt(format!("re-creating table {name}: {e}")))?;
        }
        let actual: Vec<String> = server
            .db
            .raw()
            .schema(&name)
            .map(|s| s.columns.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default();
        if actual != columns {
            return Err(corrupt(format!(
                "table {name}: checkpoint columns {columns:?} do not match the installed schema \
                 {actual:?} (recovery requires the AppConfig the data was written with)"
            )));
        }
        server
            .db
            .replace_table_rows(&name, rows)
            .map_err(|e| corrupt(format!("restoring rows of {name}: {e}")))?;
    }
    d.finish()?;
    server.clock.fast_forward(clock);
    server.db.force_current_generation(current_gen);
    server.db.raise_synthetic_id_watermark(watermark);
    server.pending_cookie_invalidations = invalidations.into_iter().collect();
    server.conflicts = crate::conflict::ConflictQueue::new();
    for c in conflicts {
        server.conflicts.push(c);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Delta checkpoints: what changed since the previous chain link
// ---------------------------------------------------------------------------
//
// A delta checkpoint carries the *small* server state wholesale (counters,
// pending repair, conflicts, cookie invalidations, source versions — all
// O(1) or bounded by active repairs, not by database size) and the *large*
// state incrementally: new actions above the history floor, cancelled-flag
// flips below it, client logs uploaded since, and per-table row-version
// changes from the database's mutation tracker. Encoding cost is therefore
// O(rows and actions changed since the last checkpoint), which is what lets
// the chain keep checkpoint latency flat as the database grows.

/// Encodes a delta checkpoint payload. Drains the database's checkpoint
/// tracker; the caller resets [`CheckpointMarks`] only once the store
/// accepts the write (a declined write means nothing changed — the drained
/// delta and the marks were all empty).
fn encode_checkpoint_delta(server: &mut WarpServer) -> Vec<u8> {
    let delta = server.db.drain_checkpoint_delta();
    let floor = server.ckpt_marks.actions_floor.min(server.history.len());
    let mut e = Encoder::new();
    e.u32(FORMAT_VERSION);
    e.i64(server.clock.now());
    e.u64(server.rng_counter);
    e.u64(server.session_counter);
    e.i64(server.db.current_generation());
    e.i64(server.db.synthetic_id_watermark());
    e.option(server.pending_repair.as_ref(), enc_repair_request);
    let invalidations: Vec<String> = server
        .pending_cookie_invalidations
        .iter()
        .cloned()
        .collect();
    e.seq(&invalidations, |e, s| e.str(s));
    e.seq(server.conflicts.all(), enc_conflict);
    e.seq(
        &server.sources.export_versions(),
        |e, (name, time, content, retro)| {
            e.str(name);
            e.i64(*time);
            e.str(content);
            e.bool(*retro);
        },
    );
    e.u64(server.history.client_log_quota_bytes as u64);
    // History: the floor anchors ID continuity (validated on apply, like
    // per-record action IDs), new actions sit above it, cancellations
    // reference below it.
    e.u64(floor as u64);
    e.seq(&server.history.actions()[floor..], enc_action);
    let cancelled: std::collections::BTreeSet<ActionId> = server
        .ckpt_marks
        .cancelled
        .iter()
        .copied()
        .filter(|&id| (id as usize) < floor)
        .collect();
    let cancelled: Vec<ActionId> = cancelled.into_iter().collect();
    e.seq(&cancelled, |e, id| e.u64(*id));
    // Client logs: fetch the current record per uploaded (client, visit) —
    // a later upload for the same visit replaces the earlier one, and the
    // quota may have evicted some entirely.
    let mut log_keys: Vec<(String, u64)> = server.ckpt_marks.new_logs.clone();
    log_keys.sort();
    log_keys.dedup();
    let logs: Vec<&PageVisitRecord> = log_keys
        .iter()
        .filter_map(|(c, v)| server.history.client_log(c, *v))
        .collect();
    e.u32(logs.len() as u32);
    for log in &logs {
        enc_page_visit(&mut e, log);
    }
    // Tables: every table with row changes, plus tables installed since the
    // last checkpoint even when untouched — a fold must not lose their
    // schema once the CreateTable log record is compacted away.
    let schemas = server.db.table_create_statements();
    let mut names: std::collections::BTreeSet<&str> = delta.keys().map(|s| s.as_str()).collect();
    names.extend(server.ckpt_marks.new_tables.iter().map(|s| s.as_str()));
    let included: Vec<&(String, String, TableAnnotation)> = schemas
        .iter()
        .filter(|(name, _, _)| names.contains(name.as_str()))
        .collect();
    e.u32(included.len() as u32);
    let empty = warp_ttdb::TableDelta::default();
    for (name, create_sql, annotation) in included {
        e.str(name);
        e.str(create_sql);
        enc_annotation(&mut e, annotation);
        let columns: Vec<String> = server
            .db
            .raw()
            .schema(name)
            .map(|s| s.columns.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default();
        e.seq(&columns, |e, c| e.str(c));
        let d = delta.get(name).unwrap_or(&empty);
        e.seq(&d.remove, |e, row| enc_row(e, row));
        e.seq(&d.add, |e, row| enc_row(e, row));
    }
    e.into_bytes()
}

/// Applies one delta checkpoint payload to a server that already restored
/// the base (and any earlier deltas) of the same chain.
fn apply_checkpoint_delta(server: &mut WarpServer, payload: &[u8]) -> StoreResult<()> {
    let mut d = Decoder::new(payload);
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(corrupt(format!(
            "delta checkpoint format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let clock = d.i64()?;
    server.rng_counter = d.u64()?;
    server.session_counter = d.u64()?;
    let current_gen = d.i64()?;
    let watermark = d.i64()?;
    server.pending_repair = d.option(dec_repair_request)?;
    let invalidations = d.seq(|d| d.str())?;
    let conflicts = d.seq(dec_conflict)?;
    let sources = d.seq(|d| Ok((d.str()?, d.i64()?, d.str()?, d.bool()?)))?;
    server.sources = crate::sourcefs::SourceStore::import_versions(sources);
    server.history.client_log_quota_bytes = d.u64()? as usize;
    let floor = d.u64()? as usize;
    if server.history.len() != floor {
        return Err(corrupt(format!(
            "delta checkpoint continues a history of {floor} actions, found {}; the chain \
             links do not fit together",
            server.history.len()
        )));
    }
    for action in d.seq(dec_action)? {
        let expected = action.id;
        let assigned = server.history.record_action(action);
        if assigned != expected {
            return Err(corrupt(format!(
                "delta checkpoint action {expected} restored with ID {assigned}"
            )));
        }
    }
    for id in d.seq(|d| d.u64())? {
        match server.history.action_mut(id) {
            Some(a) => a.cancelled = true,
            None => {
                return Err(corrupt(format!(
                    "delta checkpoint cancels unknown action {id}"
                )))
            }
        }
    }
    let n_logs = d.u32()?;
    for _ in 0..n_logs {
        server.history.upload_client_log(dec_page_visit(&mut d)?);
    }
    let n_tables = d.u32()?;
    for _ in 0..n_tables {
        let name = d.str()?;
        let create_sql = d.str()?;
        let annotation = dec_annotation(&mut d)?;
        let columns = d.seq(|d| d.str())?;
        let remove = d.seq(dec_row)?;
        let add = d.seq(dec_row)?;
        if server.db.row_id_column(&name).is_none() {
            server
                .db
                .create_table(&create_sql, annotation)
                .map_err(|e| corrupt(format!("re-creating table {name}: {e}")))?;
        }
        let actual: Vec<String> = server
            .db
            .raw()
            .schema(&name)
            .map(|s| s.columns.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default();
        if actual != columns {
            return Err(corrupt(format!(
                "table {name}: delta checkpoint columns {columns:?} do not match the installed \
                 schema {actual:?} (recovery requires the AppConfig the data was written with)"
            )));
        }
        server
            .db
            .apply_row_diff(&name, &remove, &add)
            .map_err(|e| corrupt(format!("applying delta checkpoint to {name}: {e}")))?;
    }
    d.finish()?;
    server.clock.fast_forward(clock);
    server.db.force_current_generation(current_gen);
    server.db.raise_synthetic_id_watermark(watermark);
    server.pending_cookie_invalidations = invalidations.into_iter().collect();
    server.conflicts = crate::conflict::ConflictQueue::new();
    for c in conflicts {
        server.conflicts.push(c);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Payload-level chain folding (the maintenance worker's folder)
// ---------------------------------------------------------------------------
//
// The background maintenance worker compacts a long chain by folding base +
// deltas into one new base *without* a server: the payloads are decoded
// structurally, the deltas applied image-to-image, and the result re-encoded
// in exactly the base format `restore_checkpoint` reads. Folding in payload
// space (rather than booting a throwaway server) keeps the worker free of
// any `AppConfig` and makes the fold a pure function of the blobs.

/// One table of a decoded checkpoint image.
struct ImageTable {
    name: String,
    create_sql: String,
    annotation: TableAnnotation,
    columns: Vec<String>,
    rows: Vec<Vec<SqlValue>>,
}

/// A base checkpoint payload, decoded into its sections.
struct CheckpointImage {
    clock: i64,
    rng: u64,
    session: u64,
    current_gen: i64,
    watermark: i64,
    pending_repair: Option<RepairRequest>,
    invalidations: Vec<String>,
    conflicts: Vec<Conflict>,
    sources: Vec<(String, i64, String, bool)>,
    quota: u64,
    actions: Vec<ActionRecord>,
    logs: Vec<PageVisitRecord>,
    tables: Vec<ImageTable>,
}

fn decode_checkpoint_image(payload: &[u8]) -> DecResult<CheckpointImage> {
    let mut d = Decoder::new(payload);
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(bad(format!("checkpoint format version {version}")));
    }
    let clock = d.i64()?;
    let rng = d.u64()?;
    let session = d.u64()?;
    let current_gen = d.i64()?;
    let watermark = d.i64()?;
    let pending_repair = d.option(dec_repair_request)?;
    let invalidations = d.seq(|d| d.str())?;
    let conflicts = d.seq(dec_conflict)?;
    let sources = d.seq(|d| Ok((d.str()?, d.i64()?, d.str()?, d.bool()?)))?;
    let quota = d.u64()?;
    let actions = d.seq(dec_action)?;
    let n_logs = d.u32()?;
    let mut logs = Vec::with_capacity(n_logs as usize);
    for _ in 0..n_logs {
        logs.push(dec_page_visit(&mut d)?);
    }
    let n_tables = d.u32()?;
    let mut tables = Vec::with_capacity(n_tables as usize);
    for _ in 0..n_tables {
        tables.push(ImageTable {
            name: d.str()?,
            create_sql: d.str()?,
            annotation: dec_annotation(&mut d)?,
            columns: d.seq(|d| d.str())?,
            rows: d.seq(dec_row)?,
        });
    }
    d.finish()?;
    Ok(CheckpointImage {
        clock,
        rng,
        session,
        current_gen,
        watermark,
        pending_repair,
        invalidations,
        conflicts,
        sources,
        quota,
        actions,
        logs,
        tables,
    })
}

/// Re-encodes an image in the base checkpoint format — the inverse of
/// [`decode_checkpoint_image`] and byte-compatible with what
/// [`restore_checkpoint`] reads.
fn encode_checkpoint_image(img: &CheckpointImage) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u32(FORMAT_VERSION);
    e.i64(img.clock);
    e.u64(img.rng);
    e.u64(img.session);
    e.i64(img.current_gen);
    e.i64(img.watermark);
    e.option(img.pending_repair.as_ref(), enc_repair_request);
    e.seq(&img.invalidations, |e, s| e.str(s));
    e.seq(&img.conflicts, enc_conflict);
    e.seq(&img.sources, |e, (name, time, content, retro)| {
        e.str(name);
        e.i64(*time);
        e.str(content);
        e.bool(*retro);
    });
    e.u64(img.quota);
    e.seq(&img.actions, enc_action);
    e.u32(img.logs.len() as u32);
    for log in &img.logs {
        enc_page_visit(&mut e, log);
    }
    e.u32(img.tables.len() as u32);
    for t in &img.tables {
        e.str(&t.name);
        e.str(&t.create_sql);
        enc_annotation(&mut e, &t.annotation);
        e.seq(&t.columns, |e, c| e.str(c));
        e.seq(&t.rows, |e, row| enc_row(e, row));
    }
    e.into_bytes()
}

/// Applies one delta payload to a decoded image — the payload-space twin of
/// [`apply_checkpoint_delta`], with identical semantics (order-preserving
/// first-match row removal, replace-or-append client logs by visit).
fn apply_delta_to_image(img: &mut CheckpointImage, payload: &[u8]) -> DecResult<()> {
    let mut d = Decoder::new(payload);
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(bad(format!("delta checkpoint format version {version}")));
    }
    img.clock = d.i64()?;
    img.rng = d.u64()?;
    img.session = d.u64()?;
    img.current_gen = d.i64()?;
    img.watermark = d.i64()?;
    img.pending_repair = d.option(dec_repair_request)?;
    img.invalidations = d.seq(|d| d.str())?;
    img.conflicts = d.seq(dec_conflict)?;
    img.sources = d.seq(|d| Ok((d.str()?, d.i64()?, d.str()?, d.bool()?)))?;
    img.quota = d.u64()?;
    let floor = d.u64()? as usize;
    if img.actions.len() != floor {
        return Err(bad(format!(
            "delta continues {floor} actions, image has {}",
            img.actions.len()
        )));
    }
    img.actions.extend(d.seq(dec_action)?);
    for id in d.seq(|d| d.u64())? {
        img.actions
            .get_mut(id as usize)
            .ok_or_else(|| bad(format!("delta cancels unknown action {id}")))?
            .cancelled = true;
    }
    let n_logs = d.u32()?;
    for _ in 0..n_logs {
        let log = dec_page_visit(&mut d)?;
        match img
            .logs
            .iter_mut()
            .find(|l| l.client_id == log.client_id && l.visit_id == log.visit_id)
        {
            Some(existing) => *existing = log,
            None => img.logs.push(log),
        }
    }
    let n_tables = d.u32()?;
    for _ in 0..n_tables {
        let name = d.str()?;
        let create_sql = d.str()?;
        let annotation = dec_annotation(&mut d)?;
        let columns = d.seq(|d| d.str())?;
        let remove = d.seq(dec_row)?;
        let add = d.seq(dec_row)?;
        match img.tables.iter_mut().find(|t| t.name == name) {
            Some(t) => {
                for gone in &remove {
                    if let Some(pos) = t.rows.iter().position(|r| r == gone) {
                        t.rows.remove(pos);
                    }
                }
                t.rows.extend(add);
            }
            None => img.tables.push(ImageTable {
                name,
                create_sql,
                annotation,
                columns,
                rows: add,
            }),
        }
    }
    d.finish()?;
    Ok(())
}

/// Folds a base checkpoint payload and its delta payloads (oldest first)
/// into a single equivalent base payload. `None` when any payload fails to
/// decode — the maintenance worker then leaves the chain alone rather than
/// writing a wrong base over a recoverable one.
pub(crate) fn fold_checkpoint_chain(base: &[u8], deltas: &[Vec<u8>]) -> Option<Vec<u8>> {
    let mut img = decode_checkpoint_image(base).ok()?;
    for delta in deltas {
        apply_delta_to_image(&mut img, delta).ok()?;
    }
    Some(encode_checkpoint_image(&img))
}

// ---------------------------------------------------------------------------
// The persistent server: open / replay / write path
// ---------------------------------------------------------------------------

fn apply_event(server: &mut WarpServer, event: LogEvent) -> StoreResult<()> {
    match event {
        LogEvent::Action {
            gen,
            clock_after,
            rng_after,
            session_after,
            watermark_after,
            action,
        } => {
            // Mirror the cookie-invalidation consumption `handle` performed.
            if let Some(client) = &action.client {
                server
                    .pending_cookie_invalidations
                    .remove(&client.client_id);
            }
            // Re-execute the action's writes at their original times in the
            // recorded generation; this reproduces the row versions the
            // original execution created. Reads need no replay.
            for q in &action.queries {
                if !q.is_write {
                    continue;
                }
                let stmt = warp_sql::parse(&q.sql)
                    .map_err(|e| corrupt(format!("replaying `{}`: {e}", q.sql)))?;
                server
                    .db
                    .execute_stmt_logged(&stmt, q.time, gen)
                    .map_err(|e| corrupt(format!("replaying `{}`: {e}", q.sql)))?;
            }
            server.clock.fast_forward(clock_after);
            server.rng_counter = rng_after;
            server.session_counter = session_after;
            server.db.raise_synthetic_id_watermark(watermark_after);
            let expected = action.id;
            let assigned = server.history.record_action(*action);
            if assigned != expected {
                return Err(corrupt(format!(
                    "log action {expected} replayed as action {assigned}; the log does not \
                     continue the recovered history"
                )));
            }
        }
        LogEvent::ClientLog(record) => server.history.upload_client_log(record),
        LogEvent::RepairBegin(request) => server.pending_repair = Some(request),
        LogEvent::RepairCommit(commit) => {
            server.pending_repair = None;
            if let Some((patch, from_time)) = &commit.patch {
                server.sources.apply_retroactive_patch(patch, *from_time);
            }
            for (table, remove, add) in &commit.table_diffs {
                server
                    .db
                    .apply_row_diff(table, remove, add)
                    .map_err(|e| corrupt(format!("applying repair diff to {table}: {e}")))?;
            }
            server.db.force_current_generation(commit.current_gen);
            server.db.raise_synthetic_id_watermark(commit.watermark);
            for id in commit.cancelled {
                if let Some(a) = server.history.action_mut(id) {
                    a.cancelled = true;
                }
            }
            for c in commit.conflicts {
                server.conflicts.push(c);
            }
            server
                .pending_cookie_invalidations
                .extend(commit.cookie_invalidations);
        }
        LogEvent::RepairAbort {
            patch,
            cookie_invalidations,
        } => {
            server.pending_repair = None;
            if let Some((patch, from_time)) = &patch {
                server.sources.apply_retroactive_patch(patch, *from_time);
            }
            server
                .pending_cookie_invalidations
                .extend(cookie_invalidations);
        }
        LogEvent::Gc { before_time } => {
            server.garbage_collect_unlogged(before_time);
        }
        LogEvent::CreateTable { sql, annotation } => {
            let stmt = warp_sql::parse(&sql).map_err(|e| corrupt(format!("replaying DDL: {e}")))?;
            let name = stmt.table_name().unwrap_or_default().to_string();
            if server.db.row_id_column(&name).is_none() {
                server
                    .db
                    .create_table(&sql, annotation)
                    .map_err(|e| corrupt(format!("replaying CREATE TABLE {name}: {e}")))?;
            }
        }
    }
    Ok(())
}

impl WarpServer {
    /// Installs the application and opens its durable store, recovering any
    /// persisted state: the newest checkpoint is restored and the log tail
    /// replayed, rebuilding the history graph, partition index, time-travel
    /// database, counters and queued conflicts exactly as they were. Without
    /// a storage backend in `config` this is [`WarpServer::new`].
    ///
    /// Recovery requires the same [`AppConfig`] the data was written with
    /// (the schema/seed/install step is replayed from it, not persisted).
    pub fn open(config: ServerConfig) -> StoreResult<(WarpServer, RecoveryReport)> {
        let ServerConfig {
            app,
            backend,
            store_options,
        } = config;
        let mut server = WarpServer::new(app);
        let Some(backend) = backend else {
            return Ok((server, RecoveryReport::default()));
        };
        let (store, recovered) = DurableStore::open(backend, store_options)?;
        let mut report = RecoveryReport {
            recovered: recovered.checkpoint.is_some() || !recovered.records.is_empty(),
            from_checkpoint: recovered.checkpoint.is_some(),
            records_replayed: recovered.records.len(),
            torn_tail: recovered.torn_tail,
            pending_repair: false,
        };
        if let Some(payload) = &recovered.checkpoint {
            restore_checkpoint(&mut server, payload)?;
        }
        // Fold the delta chain onto the base, oldest link first, then replay
        // the log tail at or after the chain tip.
        for payload in &recovered.deltas {
            apply_checkpoint_delta(&mut server, payload)?;
        }
        for (lsn, kind, payload) in &recovered.records {
            let event = LogEvent::decode(*kind, payload)
                .map_err(|e| corrupt(format!("log record {lsn}: {e}")))?;
            apply_event(&mut server, event)?;
        }
        report.pending_repair = server.pending_repair.is_some();
        // Arm the incremental-checkpoint tracker: from here on the database
        // records row changes so the next automatic checkpoint can be a
        // delta instead of a whole-state write.
        server.db.enable_checkpoint_capture();
        server.ckpt_marks = CheckpointMarks {
            actions_floor: server.history.len(),
            ..CheckpointMarks::default()
        };
        server.store = Some(LogSink::Inline(store));
        Ok((server, report))
    }

    /// Appends one event to the durable log (no-op for in-memory servers).
    ///
    /// # Panics
    ///
    /// Panics if the backend fails: a server that promised durability and
    /// can no longer write its log must not keep serving silently.
    pub(crate) fn log_event(&mut self, event: &LogEvent) {
        if let Some(sink) = &mut self.store {
            let (kind, payload) = event.encode();
            sink.append(kind, payload);
        }
    }

    /// Moves the durable store onto a background group-commit writer thread
    /// governed by `policy`. No-op for in-memory servers or when the writer
    /// is already active. Used by the [`crate::Warp`] engine; the classic
    /// synchronous [`WarpServer`] keeps the inline sink.
    pub(crate) fn enable_group_commit(&mut self, policy: warp_store::BatchPolicy) {
        self.enable_group_commit_inner(policy, None);
    }

    /// Like [`enable_group_commit`](WarpServer::enable_group_commit), but
    /// attaches a replication hook to the writer thread: every durable
    /// batch is handed to `shipper` before its durability callbacks run
    /// (the log-shipping entry point; see [`crate::WarpBuilder::ship_log_to`]).
    pub(crate) fn enable_group_commit_with_shipper(
        &mut self,
        policy: warp_store::BatchPolicy,
        shipper: Box<dyn warp_store::ShipperHook>,
    ) {
        self.enable_group_commit_inner(policy, Some(shipper));
    }

    fn enable_group_commit_inner(
        &mut self,
        policy: warp_store::BatchPolicy,
        shipper: Option<Box<dyn warp_store::ShipperHook>>,
    ) {
        if matches!(self.store, Some(LogSink::Inline(_))) {
            let Some(LogSink::Inline(store)) = self.store.take() else {
                unreachable!("matched above");
            };
            let checkpoint_interval = store.options().checkpoint_interval;
            let fold_after_deltas = store.options().fold_after_deltas;
            let since_checkpoint = store.tail_len();
            let deltas_since_base = store.deltas_since_base();
            let writer = match shipper {
                None => warp_store::GroupCommitWriter::spawn(store, policy),
                Some(hook) => {
                    warp_store::GroupCommitWriter::spawn_with_shipper(store, policy, hook)
                }
            };
            self.store = Some(LogSink::Writer {
                writer,
                since_checkpoint,
                checkpoint_interval,
                deltas_since_base,
                fold_after_deltas,
            });
        }
    }

    /// Stops the group-commit writer (flushing everything) and returns the
    /// store to the inline sink. No-op unless the writer is active.
    pub(crate) fn disable_group_commit(&mut self) {
        if matches!(self.store, Some(LogSink::Writer { .. })) {
            let Some(LogSink::Writer { writer, .. }) = self.store.take() else {
                unreachable!("matched above");
            };
            let (store, _) = writer.close();
            self.store = Some(LogSink::Inline(store));
        }
    }

    /// True if this server persists its state.
    pub fn is_persistent(&self) -> bool {
        self.store.is_some()
    }

    /// Takes a checkpoint now: the complete server state is written to the
    /// store and the log is compacted (all segments deleted). On the
    /// group-commit path, pending records are flushed first — the
    /// checkpoint payload reflects their effects, and the writer appends
    /// them before compacting. No-op for in-memory servers.
    pub fn checkpoint(&mut self) {
        if self.store.is_none() {
            return;
        }
        let payload = encode_checkpoint(self);
        let sink = self.store.as_mut().expect("checked above");
        sink.write_checkpoint(payload);
        self.reset_checkpoint_marks();
    }

    /// Takes an *incremental* checkpoint: a delta link chained onto the
    /// newest checkpoint, carrying only what changed since — O(rows and
    /// actions changed), independent of database size. Falls back to a full
    /// base checkpoint when the chain has no base yet, when GC renumbered
    /// action IDs, or when the chain grew past
    /// [`warp_store::StoreOptions::fold_after_deltas`] links on a server
    /// with no background maintenance worker to fold it. No-op for
    /// in-memory servers.
    pub fn checkpoint_incremental(&mut self) {
        let Some(sink) = self.store.as_ref() else {
            return;
        };
        if self.ckpt_marks.needs_base || !sink.has_checkpoint() {
            self.checkpoint();
            return;
        }
        if self.maintenance.is_none() && sink.should_fold() {
            self.checkpoint();
            return;
        }
        let payload = encode_checkpoint_delta(self);
        let sink = self.store.as_mut().expect("checked above");
        if sink.write_delta_checkpoint(payload) {
            self.reset_checkpoint_marks();
            if let Some(worker) = &self.maintenance {
                worker.nudge();
            }
        }
    }

    /// Resets the incremental-checkpoint bookkeeping after any checkpoint
    /// write: the marks restart from the current history length and the
    /// database's tracker restarts empty.
    fn reset_checkpoint_marks(&mut self) {
        if self.db.checkpoint_capture_enabled() {
            let _ = self.db.drain_checkpoint_delta();
        }
        self.ckpt_marks = CheckpointMarks {
            actions_floor: self.history.len(),
            ..CheckpointMarks::default()
        };
    }

    /// Takes a checkpoint if the configured interval has elapsed — an
    /// incremental one on the automatic cadence; see
    /// [`WarpServer::checkpoint_incremental`].
    pub(crate) fn maybe_checkpoint(&mut self) {
        if self
            .store
            .as_ref()
            .map(|s| s.checkpoint_due())
            .unwrap_or(false)
        {
            self.checkpoint_incremental();
        }
    }

    /// Starts the background maintenance worker: over its own handle onto
    /// the same backend, it folds delta-checkpoint chains into fresh bases
    /// and retires (or cold-stores, with
    /// [`warp_store::StoreOptions::cold_retention`]) the log segments a
    /// base subsumes — so compaction never runs on the serve path. Returns
    /// `false` for in-memory servers, for backends that cannot hand out a
    /// second handle, or once the store has moved onto the group-commit
    /// writer (start maintenance before enabling group commit, as
    /// [`crate::WarpBuilder`] does). Idempotent once running.
    pub fn start_maintenance(&mut self) -> bool {
        if self.maintenance.is_some() {
            return true;
        }
        let Some(LogSink::Inline(store)) = &self.store else {
            return false;
        };
        let Some(backend) = store.clone_backend() else {
            return false;
        };
        let config = warp_store::MaintenanceConfig::from_options(&store.options());
        let folder: warp_store::ChainFolder = Box::new(fold_checkpoint_chain);
        self.maintenance = Some(warp_store::MaintenanceWorker::spawn(
            backend, folder, config,
        ));
        true
    }

    /// Stops the background maintenance worker after one final pass,
    /// returning its lifetime counters. `None` when it was not running.
    pub fn stop_maintenance(&mut self) -> Option<warp_store::MaintenanceStats> {
        self.maintenance.take().map(|w| w.close())
    }

    /// The maintenance worker's lifetime counters so far (`None` when it is
    /// not running).
    pub fn maintenance_stats(&self) -> Option<warp_store::MaintenanceStats> {
        self.maintenance.as_ref().map(|w| w.stats())
    }

    /// Runs one maintenance pass synchronously — fold the chain if it is
    /// long enough, then retire covered segments — and returns the worker's
    /// counters afterwards. `None` when the worker is not running. Mostly
    /// for tests and administrative tooling; production deployments let the
    /// worker pace itself.
    pub fn run_maintenance_pass(&self) -> Option<warp_store::MaintenanceStats> {
        self.maintenance.as_ref().map(|w| w.run_once())
    }

    /// Blocks until every log record appended so far is durable. Immediate
    /// on the synchronous path; on the group-commit path this is the
    /// barrier the façade uses before reporting repair outcomes (and that
    /// `Relaxed`-tier callers can use to upgrade to durability on demand).
    pub fn flush_durable(&mut self) {
        if let Some(sink) = &self.store {
            sink.flush();
        }
    }

    /// The interrupted repair recovery found (a `RepairBegin` record with no
    /// matching commit or abort), if any. The crash discarded all of the
    /// repair's effects, so re-running it via
    /// [`WarpServer::resume_pending_repair`] redoes it from scratch.
    pub fn pending_repair(&self) -> Option<&RepairRequest> {
        self.pending_repair.as_ref()
    }

    /// Re-runs the interrupted repair recovery detected, if any.
    pub fn resume_pending_repair(
        &mut self,
        strategy: crate::scheduler::RepairStrategy,
    ) -> Option<crate::repair::RepairOutcome> {
        let request = self.pending_repair.take()?;
        Some(self.repair_with(request, strategy))
    }

    /// The durable LSN watermark: the next LSN the log will assign, with
    /// every record below it on disk. On the group-commit path this
    /// flushes first, so the watermark covers everything appended before
    /// the call — the ack metadata a log shipper keys on. Always 0 for
    /// in-memory servers.
    pub fn durable_lsn(&self) -> u64 {
        self.store.as_ref().map(|s| s.durable_lsn()).unwrap_or(0)
    }

    /// Applies one replicated log record — the standby apply path used by
    /// `warp-replica`. The record is appended to this server's own durable
    /// log (keeping its LSNs aligned with the primary's), its effects are
    /// applied exactly as crash recovery would apply them, and the
    /// incremental-checkpoint bookkeeping the live path would have kept is
    /// maintained — so the standby builds its *own* checkpoint chain and a
    /// later promotion replays only a short tail. Takes a checkpoint when
    /// the configured interval elapses.
    ///
    /// # Errors
    ///
    /// Fails when the record does not decode or does not continue this
    /// server's history — the replication stream and the local state have
    /// diverged, which is a bug, not a recoverable condition.
    pub fn apply_replicated(&mut self, kind: u8, payload: &[u8]) -> StoreResult<()> {
        let event = LogEvent::decode(kind, payload)
            .map_err(|e| corrupt(format!("replicated record: {e}")))?;
        // Mirror the live path's incremental-checkpoint bookkeeping: a
        // delta checkpoint on the standby must carry cancelled flags, new
        // client logs and new tables, and a GC forces the next checkpoint
        // to be a full base (action IDs were renumbered).
        match &event {
            LogEvent::ClientLog(log) => self
                .ckpt_marks
                .new_logs
                .push((log.client_id.clone(), log.visit_id)),
            LogEvent::RepairCommit(commit) => self
                .ckpt_marks
                .cancelled
                .extend(commit.cancelled.iter().copied()),
            LogEvent::Gc { .. } => self.ckpt_marks.needs_base = true,
            LogEvent::CreateTable { sql, .. } => {
                if let Some(name) = warp_sql::parse(sql)
                    .ok()
                    .and_then(|stmt| stmt.table_name().map(|n| n.to_string()))
                {
                    self.ckpt_marks.new_tables.push(name);
                }
            }
            _ => {}
        }
        if let Some(sink) = &mut self.store {
            sink.append(kind, payload.to_vec());
        }
        apply_event(self, event)?;
        self.maybe_checkpoint();
        Ok(())
    }

    /// Bytes currently held by the durable store (segments + checkpoints);
    /// 0 for in-memory servers.
    pub fn store_bytes(&self) -> u64 {
        self.store.as_ref().map(|s| s.total_bytes()).unwrap_or(0)
    }

    /// The group-commit writer's batching counters (all zero on the
    /// synchronous path and for in-memory servers).
    pub fn writer_stats(&self) -> warp_store::WriterStats {
        self.store
            .as_ref()
            .map(|s| s.writer_stats())
            .unwrap_or_default()
    }
}

/// Builds a `ServerConfig` whose app is installed fresh — used by tests and
/// callers that want an in-memory server through the same entry point.
impl From<AppConfig> for ServerConfig {
    fn from(app: AppConfig) -> Self {
        ServerConfig::new(app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_http::Transport;
    use warp_store::MemoryBackend;
    use warp_ttdb::TableAnnotation;

    fn tiny_app() -> AppConfig {
        let mut config = AppConfig::new("tiny");
        config.add_table(
            "CREATE TABLE page (page_id INTEGER PRIMARY KEY, title TEXT UNIQUE, body TEXT)",
            TableAnnotation::new()
                .row_id("page_id")
                .partitions(["title"]),
        );
        config.seed("INSERT INTO page (page_id, title, body) VALUES (1, 'Main', 'welcome')");
        config.add_source(
            "view.wasl",
            "let rows = db_query(\"SELECT body FROM page WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             if (len(rows) == 0) { echo(\"missing\"); } else { echo(rows[0][\"body\"]); }",
        );
        config.add_source(
            "edit.wasl",
            "db_query(\"UPDATE page SET body = '\" . sql_escape(param(\"body\")) . \"' WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             echo(\"saved\");",
        );
        config
    }

    fn persistent(backend: &MemoryBackend) -> WarpServer {
        let (server, _) =
            WarpServer::open(ServerConfig::new(tiny_app()).with_backend(Box::new(backend.clone())))
                .expect("open persistent server");
        server
    }

    #[test]
    fn log_events_round_trip_through_the_codec() {
        let mut server = WarpServer::new(tiny_app());
        let mut req =
            warp_http::HttpRequest::post("/edit.wasl", [("title", "Main"), ("body", "x")]);
        req.warp.client_id = Some("c1".into());
        req.warp.visit_id = Some(3);
        req.warp.request_id = Some(0);
        req.cookies.set("sid", "abc");
        server.handle(req);
        let action = server.history.actions()[0].clone();
        let event = LogEvent::Action {
            gen: 0,
            clock_after: server.clock.now(),
            rng_after: 7,
            session_after: 8,
            watermark_after: server.db.synthetic_id_watermark(),
            action: Box::new(action.clone()),
        };
        let (kind, payload) = event.encode();
        match LogEvent::decode(kind, &payload).unwrap() {
            LogEvent::Action {
                action: decoded, ..
            } => assert_eq!(*decoded, action),
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn actions_survive_a_crash_and_reopen() {
        let mem = MemoryBackend::new();
        let mut server = persistent(&mem);
        let r = server.send(warp_http::HttpRequest::get("/view.wasl?title=Main"));
        assert!(r.body.contains("welcome"));
        server.send(warp_http::HttpRequest::post(
            "/edit.wasl",
            [("title", "Main"), ("body", "edited")],
        ));
        let mut expected_db = server.db.clone();
        let expected_dump = expected_db.canonical_dump();
        let expected_clock = server.clock.now();
        drop(server); // crash

        let (mut recovered, report) =
            WarpServer::open(ServerConfig::new(tiny_app()).with_backend(Box::new(mem.clone())))
                .unwrap();
        assert!(report.recovered);
        assert_eq!(report.records_replayed, 2);
        assert_eq!(recovered.history.len(), 2);
        assert_eq!(recovered.clock.now(), expected_clock);
        assert_eq!(recovered.db.canonical_dump(), expected_dump);
        // The recovered server keeps serving — and the edit is visible.
        let r = recovered.send(warp_http::HttpRequest::get("/view.wasl?title=Main"));
        assert!(r.body.contains("edited"));
    }

    #[test]
    fn checkpoint_compacts_and_restores_identically() {
        let mem = MemoryBackend::new();
        let mut server = persistent(&mem);
        for i in 0..6 {
            server.send(warp_http::HttpRequest::post(
                "/edit.wasl",
                [("title", "Main"), ("body", format!("rev {i}").as_str())],
            ));
        }
        server.checkpoint();
        // More traffic after the checkpoint → replayed from the log tail.
        server.send(warp_http::HttpRequest::post(
            "/edit.wasl",
            [("title", "Main"), ("body", "post-ckpt")],
        ));
        let mut expected_db = server.db.clone();
        let expected_dump = expected_db.canonical_dump();
        let expected_len = server.history.len();
        drop(server);

        let (mut recovered, report) =
            WarpServer::open(ServerConfig::new(tiny_app()).with_backend(Box::new(mem.clone())))
                .unwrap();
        assert!(report.from_checkpoint);
        assert_eq!(report.records_replayed, 1);
        assert_eq!(recovered.history.len(), expected_len);
        assert_eq!(recovered.db.canonical_dump(), expected_dump);
        // The recovered partition index matches a fresh rebuild.
        assert!(!recovered.history.partition_index().is_empty());
    }

    #[test]
    fn interrupted_repair_is_detected_and_resumable() {
        let mem = MemoryBackend::new();
        let mut server = persistent(&mem);
        server.send(warp_http::HttpRequest::post(
            "/edit.wasl",
            [("title", "Main"), ("body", "<script>evil</script>")],
        ));
        // Forge the crash window: a RepairBegin hits the log, then the
        // process dies before the commit record is written.
        let patch = crate::sourcefs::Patch::new(
            "view.wasl",
            "let rows = db_query(\"SELECT body FROM page WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); \
             if (len(rows) == 0) { echo(\"missing\"); } else { echo(htmlspecialchars(rows[0][\"body\"])); }",
            "sanitise output",
        );
        let request = RepairRequest::RetroactivePatch {
            patch,
            from_time: 0,
        };
        server.log_event(&LogEvent::RepairBegin(request.clone()));
        drop(server);

        let (recovered, report) =
            WarpServer::open(ServerConfig::new(tiny_app()).with_backend(Box::new(mem.clone())))
                .unwrap();
        assert!(report.pending_repair);
        assert!(matches!(
            recovered.pending_repair(),
            Some(RepairRequest::RetroactivePatch { .. })
        ));

        // A checkpoint compacts away the RepairBegin record; the pending
        // repair must survive inside the checkpoint payload (plus a second
        // crash before anyone resumes it).
        let mut recovered = recovered;
        recovered.checkpoint();
        drop(recovered);
        let (mut recovered, report) =
            WarpServer::open(ServerConfig::new(tiny_app()).with_backend(Box::new(mem.clone())))
                .unwrap();
        assert!(
            report.pending_repair,
            "pending repair must survive checkpoint compaction"
        );
        // Redoing the interrupted repair works and commits durably.
        let outcome = recovered
            .resume_pending_repair(crate::scheduler::RepairStrategy::Sequential)
            .expect("a pending repair to resume");
        assert!(!outcome.aborted);
        assert!(recovered.pending_repair().is_none());
        drop(recovered);
        let (after, report) =
            WarpServer::open(ServerConfig::new(tiny_app()).with_backend(Box::new(mem.clone())))
                .unwrap();
        assert!(
            !report.pending_repair,
            "commit record must clear the marker"
        );
        let _ = after;
    }

    fn count_blobs(mem: &MemoryBackend) -> (usize, usize, usize) {
        use warp_store::StorageBackend;
        let names = mem.list().expect("list blobs");
        (
            names.iter().filter(|n| n.starts_with("ckpt-base-")).count(),
            names
                .iter()
                .filter(|n| n.starts_with("ckpt-delta-"))
                .count(),
            names.iter().filter(|n| n.starts_with("seg-")).count(),
        )
    }

    fn open_with(
        mem: &MemoryBackend,
        options: warp_store::StoreOptions,
    ) -> (WarpServer, RecoveryReport) {
        WarpServer::open(
            ServerConfig::new(tiny_app())
                .with_backend(Box::new(mem.clone()))
                .with_store_options(options),
        )
        .expect("open persistent server")
    }

    fn edit(server: &mut WarpServer, body: &str) {
        server.send(warp_http::HttpRequest::post(
            "/edit.wasl",
            [("title", "Main"), ("body", body)],
        ));
    }

    #[test]
    fn automatic_checkpoints_grow_a_delta_chain_and_recover() {
        let mem = MemoryBackend::new();
        let options = warp_store::StoreOptions {
            checkpoint_interval: 2,
            fold_after_deltas: 100,
            ..warp_store::StoreOptions::default()
        };
        let mut server = open_with(&mem, options).0;
        for i in 0..7 {
            edit(&mut server, &format!("rev {i}"));
        }
        // Interval 2: the first due checkpoint is a base (no chain yet),
        // the following ones are delta links; deltas delete nothing.
        let (bases, deltas, _) = count_blobs(&mem);
        assert_eq!(bases, 1);
        assert_eq!(deltas, 2);
        let mut expected_db = server.db.clone();
        let expected_dump = expected_db.canonical_dump();
        let expected_clock = server.clock.now();
        drop(server); // crash
        let (mut recovered, report) = open_with(&mem, options);
        assert!(report.from_checkpoint);
        assert_eq!(report.records_replayed, 1, "one action after the tip");
        assert_eq!(recovered.history.len(), 7);
        assert_eq!(recovered.clock.now(), expected_clock);
        assert_eq!(recovered.db.canonical_dump(), expected_dump);
        let r = recovered.send(warp_http::HttpRequest::get("/view.wasl?title=Main"));
        assert!(r.body.contains("rev 6"));
    }

    #[test]
    fn folding_the_chain_in_payload_space_matches_applying_the_deltas() {
        let mem = MemoryBackend::new();
        let options = warp_store::StoreOptions {
            checkpoint_interval: 2,
            fold_after_deltas: 100,
            ..warp_store::StoreOptions::default()
        };
        let mut server = open_with(&mem, options).0;
        for i in 0..3 {
            edit(&mut server, &format!("rev {i}"));
        }
        // The upload is the interval's second record, so the delta cut here
        // carries the client log.
        server.upload_client_logs(vec![warp_browser::PageVisitRecord::new(
            "c1",
            1,
            "/view.wasl",
        )]);
        for i in 3..7 {
            edit(&mut server, &format!("rev {i}"));
        }
        drop(server);
        let (_, recovered) =
            DurableStore::open(Box::new(mem.clone()), options).expect("reopen raw store");
        let base = recovered.checkpoint.expect("a base on disk");
        assert!(!recovered.deltas.is_empty(), "deltas on disk");
        let folded =
            fold_checkpoint_chain(&base, &recovered.deltas).expect("chain payloads decode");
        // Restoring the folded base must land exactly where restoring the
        // base and then applying each delta lands.
        let mut via_fold = WarpServer::new(tiny_app());
        restore_checkpoint(&mut via_fold, &folded).expect("restore folded base");
        let mut via_chain = WarpServer::new(tiny_app());
        restore_checkpoint(&mut via_chain, &base).expect("restore base");
        for delta in &recovered.deltas {
            apply_checkpoint_delta(&mut via_chain, delta).expect("apply delta");
        }
        assert_eq!(via_fold.history.len(), via_chain.history.len());
        assert_eq!(via_fold.db.canonical_dump(), via_chain.db.canonical_dump());
        assert_eq!(via_fold.clock.now(), via_chain.clock.now());
        assert!(via_fold.history.client_log("c1", 1).is_some());
    }

    #[test]
    fn repair_commit_between_two_deltas_recovers_exactly() {
        let mem = MemoryBackend::new();
        let options = warp_store::StoreOptions {
            checkpoint_interval: 2,
            fold_after_deltas: 100,
            ..warp_store::StoreOptions::default()
        };
        let mut server = open_with(&mem, options).0;
        edit(&mut server, "<script>evil</script>");
        for i in 0..4 {
            edit(&mut server, &format!("rev {i}"));
        }
        let (_, deltas_before, _) = count_blobs(&mem);
        assert!(deltas_before >= 1, "a delta precedes the repair");
        let patch = crate::sourcefs::Patch::new(
            "edit.wasl",
            "db_query(\"UPDATE page SET body = '[' . sql_escape(param(\"body\")) . ']' \
             WHERE title = '\" . sql_escape(param(\"title\")) . \"'\"); echo(\"saved\");",
            "bracket bodies",
        );
        let _ = patch; // the undo path exercises cancellation instead
        let outcome = server.repair_with(
            RepairRequest::UndoVisit {
                client_id: "nobody".into(),
                visit_id: 99,
                initiated_by_admin: true,
            },
            crate::scheduler::RepairStrategy::Sequential,
        );
        assert!(!outcome.aborted);
        for i in 4..8 {
            edit(&mut server, &format!("rev {i}"));
        }
        let (_, deltas_after, _) = count_blobs(&mem);
        assert!(
            deltas_after > deltas_before,
            "a delta follows the repair commit"
        );
        let mut expected_db = server.db.clone();
        let expected_dump = expected_db.canonical_dump();
        let expected_gen = server.db.current_generation();
        let expected_len = server.history.len();
        drop(server);
        let (mut recovered, _) = open_with(&mem, options);
        assert_eq!(recovered.history.len(), expected_len);
        assert_eq!(recovered.db.current_generation(), expected_gen);
        assert_eq!(recovered.db.canonical_dump(), expected_dump);
    }

    #[test]
    fn cancelled_actions_ride_the_next_delta_checkpoint() {
        let mem = MemoryBackend::new();
        let options = warp_store::StoreOptions {
            checkpoint_interval: 2,
            fold_after_deltas: 100,
            ..warp_store::StoreOptions::default()
        };
        let mut server = open_with(&mem, options).0;
        // Action 0 belongs to a client visit; several more actions push it
        // below the next checkpoint floor.
        let mut req =
            warp_http::HttpRequest::post("/edit.wasl", [("title", "Main"), ("body", "undo me")]);
        req.warp.client_id = Some("mallory".into());
        req.warp.visit_id = Some(7);
        req.warp.request_id = Some(0);
        server.handle(req);
        for i in 0..4 {
            edit(&mut server, &format!("rev {i}"));
        }
        let outcome = server.repair_with(
            RepairRequest::UndoVisit {
                client_id: "mallory".into(),
                visit_id: 7,
                initiated_by_admin: true,
            },
            crate::scheduler::RepairStrategy::Sequential,
        );
        assert!(outcome.cancelled_actions.contains(&0));
        // More traffic cuts another delta carrying the cancellation flip.
        for i in 4..8 {
            edit(&mut server, &format!("rev {i}"));
        }
        drop(server);
        let (recovered, _) = open_with(&mem, options);
        assert!(
            recovered.history.action(0).expect("action 0").cancelled,
            "the cancellation flip must survive via the delta chain"
        );
    }

    #[test]
    fn servers_without_a_worker_fold_inline_at_the_threshold() {
        let mem = MemoryBackend::new();
        let options = warp_store::StoreOptions {
            checkpoint_interval: 1,
            fold_after_deltas: 2,
            ..warp_store::StoreOptions::default()
        };
        let mut server = open_with(&mem, options).0;
        for i in 0..4 {
            edit(&mut server, &format!("rev {i}"));
        }
        // Interval 1: base, delta, delta, then the chain is past the fold
        // threshold and — with no maintenance worker — the engine compacts
        // inline with a fresh full base.
        let (bases, deltas, _) = count_blobs(&mem);
        assert_eq!((bases, deltas), (1, 0), "inline fold compacts the chain");
        drop(server);
        let (recovered, report) = open_with(&mem, options);
        assert!(report.from_checkpoint);
        assert_eq!(recovered.history.len(), 4);
    }

    #[test]
    fn background_maintenance_folds_the_chain_off_the_serve_path() {
        let mem = MemoryBackend::new();
        let options = warp_store::StoreOptions {
            checkpoint_interval: 1,
            fold_after_deltas: 2,
            ..warp_store::StoreOptions::default()
        };
        let mut server = open_with(&mem, options).0;
        assert!(server.start_maintenance(), "memory backends clone");
        for i in 0..5 {
            edit(&mut server, &format!("rev {i}"));
        }
        let stats = server
            .maintenance
            .as_ref()
            .expect("worker running")
            .run_once();
        assert!(stats.folds >= 1, "the worker folded the chain: {stats:?}");
        let mut expected_db = server.db.clone();
        let expected_dump = expected_db.canonical_dump();
        let stats = server.stop_maintenance().expect("worker was running");
        assert_eq!(stats.errors, 0, "no failed passes: {stats:?}");
        drop(server);
        let (recovered, report) = open_with(&mem, options);
        assert!(report.from_checkpoint);
        assert_eq!(recovered.history.len(), 5);
        let mut db = recovered.db.clone();
        assert_eq!(db.canonical_dump(), expected_dump);
    }

    #[test]
    fn gc_forces_a_base_checkpoint_and_prunes_the_cold_tier() {
        let mem = MemoryBackend::new();
        let options = warp_store::StoreOptions {
            checkpoint_interval: 2,
            fold_after_deltas: 100,
            cold_retention: true,
            ..warp_store::StoreOptions::default()
        };
        let mut server = open_with(&mem, options).0;
        for i in 0..6 {
            edit(&mut server, &format!("rev {i}"));
        }
        drop(server);
        let mut server = open_with(&mem, options).0;
        // GC renumbers action IDs: the checkpoint that follows must be a
        // full base, and the cold archive loses its last reader.
        let cutoff = server.clock.now();
        edit(&mut server, "after gc");
        server.garbage_collect(cutoff);
        use warp_store::StorageBackend;
        let names = mem.list().expect("list blobs");
        assert!(
            !names.iter().any(|n| n.starts_with("cold-")),
            "GC prunes cold blobs: {names:?}"
        );
        let (bases, deltas, _) = count_blobs(&mem);
        assert_eq!((bases, deltas), (1, 0));
        drop(server);
        let (recovered, report) = open_with(&mem, options);
        assert!(report.from_checkpoint);
        assert_eq!(recovered.history.len(), 1);
    }

    #[test]
    fn in_memory_open_is_plain_new() {
        let (server, report) = WarpServer::open(ServerConfig::new(tiny_app())).unwrap();
        assert!(!server.is_persistent());
        assert!(!report.recovered);
        assert_eq!(server.store_bytes(), 0);
    }
}
