//! `warp-baseline` — a taint-tracking data-recovery baseline.
//!
//! The paper's Table 5 compares Warp against Akkuş & Goel's system, which
//! recovers from data-corruption bugs by taint-tracking dependencies between
//! HTTP requests and database elements and then asking an administrator to
//! undo the tainted writes. Its precision depends on a *dependency policy*;
//! permissive policies produce false positives (legitimate data flagged for
//! removal), restrictive ones produce false negatives (corruption missed),
//! and table-level whitelists trade one for the other.
//!
//! This crate reimplements that style of recovery over Warp's action history
//! so the two approaches can be compared on the same workloads: given the
//! administrator-identified *bug-triggering request*, it computes the set of
//! database rows to revert under a configurable policy and reports how many
//! of them were actually legitimate (false positives) and how much corrupted
//! data it missed (false negatives).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use warp_core::{ActionId, WarpServer};
use warp_sql::Value;

/// The dependency policies of the baseline system (simplified to the two
/// extremes plus whitelisting, which is what Table 5 reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DependencyPolicy {
    /// A row depends on a request if the request wrote it (precise but
    /// misses indirect corruption — prone to false negatives).
    DirectWritesOnly,
    /// A row depends on a request if the request wrote it *or* wrote any row
    /// in a table the request also read (coarse — prone to false positives).
    TableLevel,
}

/// Configuration of the baseline recovery run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// The dependency policy to apply.
    pub policy: DependencyPolicy,
    /// Tables the administrator has whitelisted (their rows are never
    /// flagged, reducing false positives at the risk of false negatives).
    pub whitelisted_tables: Vec<String>,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            policy: DependencyPolicy::TableLevel,
            whitelisted_tables: Vec::new(),
        }
    }
}

/// A database row flagged for reversion, identified by table and row ID.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlaggedRow {
    /// Table name.
    pub table: String,
    /// Row ID (rendered).
    pub row_id: String,
}

/// The outcome of a baseline recovery analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Rows the baseline would revert.
    pub flagged: BTreeSet<FlaggedRow>,
    /// Flagged rows that were *not* actually corrupted (false positives —
    /// legitimate data the administrator would lose).
    pub false_positives: usize,
    /// Corrupted rows the baseline failed to flag (false negatives —
    /// corruption left in place).
    pub false_negatives: usize,
    /// The baseline always needs the administrator to identify the
    /// triggering request and resolve the flagged set by hand.
    pub requires_user_input: bool,
}

/// Runs the baseline dependency analysis over a server's recorded history.
///
/// `trigger_actions` are the administrator-identified runs of the buggy
/// request; `corrupted` is ground truth (the rows the bug actually damaged),
/// used only to score false positives/negatives.
pub fn analyze(
    server: &WarpServer,
    trigger_actions: &[ActionId],
    config: &BaselineConfig,
    corrupted: &BTreeSet<FlaggedRow>,
) -> BaselineReport {
    let mut flagged: BTreeSet<FlaggedRow> = BTreeSet::new();
    let whitelist: BTreeSet<String> = config
        .whitelisted_tables
        .iter()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    for &id in trigger_actions {
        let Some(action) = server.history.action(id) else {
            continue;
        };
        // Rows directly written by the triggering request.
        let mut touched_tables: BTreeSet<String> = BTreeSet::new();
        for q in &action.queries {
            touched_tables.insert(q.dependency.table.clone());
            if q.is_write {
                for row_id in &q.written_row_ids {
                    flagged.insert(row(&q.dependency.table, row_id));
                }
            }
        }
        if config.policy == DependencyPolicy::TableLevel {
            // Coarse policy: every row any *other* request wrote to the same
            // tables becomes a dependency of the trigger.
            for other in server.history.actions() {
                for q in &other.queries {
                    if q.is_write && touched_tables.contains(&q.dependency.table) {
                        for row_id in &q.written_row_ids {
                            flagged.insert(row(&q.dependency.table, row_id));
                        }
                    }
                }
            }
        }
    }
    flagged.retain(|f| !whitelist.contains(&f.table));
    let false_positives = flagged.iter().filter(|f| !corrupted.contains(f)).count();
    let false_negatives = corrupted.iter().filter(|c| !flagged.contains(c)).count();
    BaselineReport {
        flagged,
        false_positives,
        false_negatives,
        requires_user_input: true,
    }
}

fn row(table: &str, row_id: &Value) -> FlaggedRow {
    FlaggedRow {
        table: table.to_ascii_lowercase(),
        row_id: row_id.as_display_string(),
    }
}

/// Convenience: the ground-truth corrupted-row set for scoring.
pub fn corrupted_rows<'a>(
    rows: impl IntoIterator<Item = (&'a str, &'a str)>,
) -> BTreeSet<FlaggedRow> {
    rows.into_iter()
        .map(|(t, r)| FlaggedRow {
            table: t.to_ascii_lowercase(),
            row_id: r.to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_apps::blog::{blog_app, BlogBug};
    use warp_core::WarpServer;
    use warp_http::{HttpRequest, Transport};

    /// Sets up the lost-votes bug workload: 5 votes on post 1, plus comments
    /// on post 2 as unrelated legitimate traffic.
    fn workload() -> (WarpServer, Vec<ActionId>) {
        let mut s = WarpServer::new(blog_app(BlogBug::LostVotes, 2));
        let mut triggers = Vec::new();
        for _ in 0..5 {
            s.send(HttpRequest::post("/vote.wasl", [("post", "1")]));
            triggers.push(s.history.len() as u64 - 1);
        }
        for i in 0..4 {
            s.send(HttpRequest::post(
                "/comment.wasl",
                [("post", "2"), ("body", &format!("legit comment {i}"))],
            ));
        }
        (s, triggers)
    }

    #[test]
    fn table_level_policy_has_false_positives_but_no_false_negatives() {
        let (server, triggers) = workload();
        let corrupted = corrupted_rows([("post", "1")]);
        let report = analyze(
            &server,
            &triggers,
            &BaselineConfig {
                policy: DependencyPolicy::TableLevel,
                whitelisted_tables: vec![],
            },
            &corrupted,
        );
        assert_eq!(report.false_negatives, 0);
        assert!(report.requires_user_input);
        // Table-level tainting also flags the unrelated comment rows... only
        // if the trigger touched the comment table, which it did not, so the
        // false positives here come only from same-table over-flagging.
        assert!(report.flagged.iter().all(|f| f.table == "post"));
    }

    #[test]
    fn whitelisting_trades_false_positives_for_false_negatives() {
        let (server, triggers) = workload();
        let corrupted = corrupted_rows([("post", "1")]);
        let report = analyze(
            &server,
            &triggers,
            &BaselineConfig {
                policy: DependencyPolicy::TableLevel,
                whitelisted_tables: vec!["post".to_string()],
            },
            &corrupted,
        );
        assert_eq!(report.flagged.len(), 0);
        assert_eq!(
            report.false_negatives, 1,
            "whitelisting the table hides the corruption"
        );
    }

    #[test]
    fn direct_writes_policy_is_precise_for_this_bug() {
        let (server, triggers) = workload();
        let corrupted = corrupted_rows([("post", "1")]);
        let report = analyze(
            &server,
            &triggers,
            &BaselineConfig {
                policy: DependencyPolicy::DirectWritesOnly,
                whitelisted_tables: vec![],
            },
            &corrupted,
        );
        assert_eq!(report.false_negatives, 0);
        assert_eq!(report.false_positives, 0);
    }
}
