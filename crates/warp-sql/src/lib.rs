//! `warp-sql` — an in-memory relational SQL engine.
//!
//! This crate is the database substrate for the Warp intrusion-recovery
//! reproduction. It plays the role PostgreSQL plays in the paper: a SQL
//! store that the time-travel layer (`warp-ttdb`) drives purely through
//! query rewriting, without any engine modifications.
//!
//! The engine supports the subset of SQL that a MediaWiki-style web
//! application (and Warp's own rewritten queries) need:
//!
//! * `CREATE TABLE` with column types, `PRIMARY KEY`, `UNIQUE` and
//!   `NOT NULL` constraints, plus table-level `UNIQUE (...)` constraints.
//! * `ALTER TABLE ... ADD COLUMN` and `DROP TABLE`.
//! * `INSERT INTO ... (cols) VALUES (...), (...)`.
//! * `SELECT` with projections, `WHERE`, `ORDER BY`, `LIMIT`, and the
//!   `COUNT`/`MAX`/`MIN`/`SUM` aggregates.
//! * `UPDATE ... SET ... WHERE` and `DELETE FROM ... WHERE`.
//! * Expressions: comparisons, `AND`/`OR`/`NOT`, arithmetic, string
//!   concatenation (`||`), `LIKE`, `IN (...)`, `IS [NOT] NULL`.
//!
//! The public API is deliberately AST-centric: [`parse`] produces a
//! [`Statement`] that callers (in particular `warp-ttdb`) may inspect and
//! rewrite before handing it to [`Database::execute`].
//!
//! # Examples
//!
//! ```
//! use warp_sql::{Database, Value};
//!
//! let mut db = Database::new();
//! db.execute_sql("CREATE TABLE page (page_id INTEGER PRIMARY KEY, title TEXT, body TEXT)")
//!     .unwrap();
//! db.execute_sql("INSERT INTO page (page_id, title, body) VALUES (1, 'Main', 'hello')")
//!     .unwrap();
//! let result = db.execute_sql("SELECT body FROM page WHERE title = 'Main'").unwrap();
//! assert_eq!(result.rows[0][0], Value::text("hello"));
//! ```

pub mod analysis;
pub mod ast;
pub mod engine;
pub mod error;
pub mod expr;
pub mod lexer;
#[cfg(debug_assertions)]
pub mod observer;
pub mod parser;
pub mod schema;
pub mod storage;
pub mod value;

pub use analysis::{
    analyze, lint_statement, ColumnSet, KeyCatalog, Lint, Precision, StatementFootprint,
};
pub use ast::{
    Assignment, ColumnConstraint, ColumnDef, Expr, OrderBy, SelectItem, Statement, TableConstraint,
};
pub use engine::{Database, QueryResult, TableChanges};
pub use error::{SqlError, SqlResult};
pub use lexer::{tokenize, Token};
pub use parser::parse;
pub use schema::{ColumnType, TableSchema};
pub use storage::{Row, Table};
pub use value::Value;

/// Escapes a string literal for safe inclusion inside single quotes in a SQL
/// statement (the analog of MediaWiki's `wfStrencode`).
///
/// This is what a *patched* application calls; the SQL-injection scenario in
/// the evaluation exercises the unpatched path that omits it.
pub fn escape_string(input: &str) -> String {
    input.replace('\'', "''")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_string_doubles_quotes() {
        assert_eq!(escape_string("it's"), "it''s");
        assert_eq!(escape_string("plain"), "plain");
        assert_eq!(escape_string("''"), "''''");
    }

    #[test]
    fn end_to_end_crud() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
            .unwrap();
        db.execute_sql("INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        db.execute_sql("UPDATE t SET name = 'z' WHERE id = 2")
            .unwrap();
        let r = db.execute_sql("SELECT name FROM t ORDER BY id").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[1][0], Value::text("z"));
        db.execute_sql("DELETE FROM t WHERE id = 1").unwrap();
        let r = db.execute_sql("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1));
    }
}
