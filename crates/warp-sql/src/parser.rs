//! Recursive-descent parser for the supported SQL dialect.

use crate::ast::{
    AggregateFunc, Assignment, BinaryOp, ColumnConstraint, ColumnDef, Expr, OrderBy, SelectItem,
    SelectStatement, Statement, TableConstraint, UnaryOp,
};
use crate::error::{SqlError, SqlResult};
use crate::lexer::{tokenize, Token};
use crate::schema::ColumnType;
use crate::value::Value;

/// Parses a single SQL statement.
///
/// # Examples
///
/// ```
/// let stmt = warp_sql::parse("SELECT * FROM page WHERE page_id = 3").unwrap();
/// assert_eq!(stmt.table_name(), Some("page"));
/// ```
pub fn parse(sql: &str) -> SqlResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let stmt = parser.parse_statement()?;
    // Allow a trailing semicolon.
    if parser.peek_symbol(";") {
        parser.pos += 1;
    }
    if parser.pos != parser.tokens.len() {
        return Err(SqlError::Parse(format!(
            "unexpected trailing tokens starting at {:?}",
            parser.tokens[parser.pos]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_keyword(kw)).unwrap_or(false)
    }

    fn peek_symbol(&self, sym: &str) -> bool {
        self.peek().map(|t| t.is_symbol(sym)).unwrap_or(false)
    }

    fn next(&mut self) -> SqlResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| SqlError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_keyword(&mut self, kw: &str) -> SqlResult<()> {
        let t = self.next()?;
        if t.is_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected keyword {kw}, found {t:?}"
            )))
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> SqlResult<()> {
        let t = self.next()?;
        if t.is_symbol(sym) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected symbol {sym:?}, found {t:?}"
            )))
        }
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn accept_symbol(&mut self, sym: &str) -> bool {
        if self.peek_symbol(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> SqlResult<String> {
        let t = self.next()?;
        match t {
            Token::Ident(s) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse_statement(&mut self) -> SqlResult<Statement> {
        if self.accept_keyword("select") {
            return self.parse_select();
        }
        if self.accept_keyword("insert") {
            return self.parse_insert();
        }
        if self.accept_keyword("update") {
            return self.parse_update();
        }
        if self.accept_keyword("delete") {
            return self.parse_delete();
        }
        if self.accept_keyword("create") {
            return self.parse_create_table();
        }
        if self.accept_keyword("drop") {
            self.expect_keyword("table")?;
            let name = self.expect_ident()?;
            return Ok(Statement::DropTable { name });
        }
        if self.accept_keyword("alter") {
            return self.parse_alter();
        }
        Err(SqlError::Parse(format!(
            "unsupported statement start: {:?}",
            self.peek()
        )))
    }

    fn parse_select(&mut self) -> SqlResult<Statement> {
        let mut items = Vec::new();
        loop {
            if self.accept_symbol("*") {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.accept_keyword("as") {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.accept_symbol(",") {
                break;
            }
        }
        self.expect_keyword("from")?;
        let table = self.expect_ident()?;
        let where_clause = if self.accept_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.accept_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.parse_expr()?;
                let ascending = if self.accept_keyword("desc") {
                    false
                } else {
                    self.accept_keyword("asc");
                    true
                };
                order_by.push(OrderBy { expr, ascending });
                if !self.accept_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.accept_keyword("limit") {
            match self.next()? {
                Token::IntLit(n) if n >= 0 => Some(n as u64),
                other => return Err(SqlError::Parse(format!("bad LIMIT: {other:?}"))),
            }
        } else {
            None
        };
        Ok(Statement::Select(SelectStatement {
            items,
            table,
            where_clause,
            order_by,
            limit,
        }))
    }

    fn parse_insert(&mut self) -> SqlResult<Statement> {
        self.expect_keyword("into")?;
        let table = self.expect_ident()?;
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.expect_ident()?);
            if !self.accept_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        self.expect_keyword("values")?;
        let mut values = Vec::new();
        loop {
            self.expect_symbol("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.accept_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            if row.len() != columns.len() {
                return Err(SqlError::Parse(format!(
                    "INSERT row has {} values but {} columns were named",
                    row.len(),
                    columns.len()
                )));
            }
            values.push(row);
            if !self.accept_symbol(",") {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            values,
        })
    }

    fn parse_update(&mut self) -> SqlResult<Statement> {
        let table = self.expect_ident()?;
        self.expect_keyword("set")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.expect_ident()?;
            self.expect_symbol("=")?;
            let value = self.parse_expr()?;
            assignments.push(Assignment { column, value });
            if !self.accept_symbol(",") {
                break;
            }
        }
        let where_clause = if self.accept_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            where_clause,
        })
    }

    fn parse_delete(&mut self) -> SqlResult<Statement> {
        self.expect_keyword("from")?;
        let table = self.expect_ident()?;
        let where_clause = if self.accept_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn parse_create_table(&mut self) -> SqlResult<Statement> {
        self.expect_keyword("table")?;
        let name = self.expect_ident()?;
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.peek_keyword("unique") || self.peek_keyword("primary") {
                constraints.push(self.parse_table_constraint()?);
            } else {
                columns.push(self.parse_column_def()?);
            }
            if !self.accept_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(Statement::CreateTable {
            name,
            columns,
            constraints,
        })
    }

    fn parse_table_constraint(&mut self) -> SqlResult<TableConstraint> {
        if self.accept_keyword("unique") {
            self.expect_symbol("(")?;
            let cols = self.parse_ident_list()?;
            self.expect_symbol(")")?;
            Ok(TableConstraint::Unique(cols))
        } else {
            self.expect_keyword("primary")?;
            self.expect_keyword("key")?;
            self.expect_symbol("(")?;
            let cols = self.parse_ident_list()?;
            self.expect_symbol(")")?;
            Ok(TableConstraint::PrimaryKey(cols))
        }
    }

    fn parse_ident_list(&mut self) -> SqlResult<Vec<String>> {
        let mut out = vec![self.expect_ident()?];
        while self.accept_symbol(",") {
            out.push(self.expect_ident()?);
        }
        Ok(out)
    }

    fn parse_column_def(&mut self) -> SqlResult<ColumnDef> {
        let name = self.expect_ident()?;
        let type_name = self.expect_ident()?;
        let col_type = ColumnType::from_name(&type_name);
        let mut def = ColumnDef::new(name, col_type);
        loop {
            if self.accept_keyword("primary") {
                self.expect_keyword("key")?;
                def.constraints.push(ColumnConstraint::PrimaryKey);
            } else if self.accept_keyword("unique") {
                def.constraints.push(ColumnConstraint::Unique);
            } else if self.accept_keyword("not") {
                self.expect_keyword("null")?;
                def.constraints.push(ColumnConstraint::NotNull);
            } else if self.accept_keyword("default") {
                let expr = self.parse_primary()?;
                match expr {
                    Expr::Literal(v) => def.default = Some(v),
                    Expr::Unary {
                        op: UnaryOp::Neg,
                        operand,
                    } => match *operand {
                        Expr::Literal(Value::Int(i)) => def.default = Some(Value::Int(-i)),
                        Expr::Literal(Value::Float(f)) => def.default = Some(Value::Float(-f)),
                        other => {
                            return Err(SqlError::Parse(format!("bad DEFAULT value: {other:?}")))
                        }
                    },
                    other => return Err(SqlError::Parse(format!("bad DEFAULT value: {other:?}"))),
                }
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn parse_alter(&mut self) -> SqlResult<Statement> {
        self.expect_keyword("table")?;
        let table = self.expect_ident()?;
        self.expect_keyword("add")?;
        // `COLUMN` keyword is optional, as in PostgreSQL.
        self.accept_keyword("column");
        let column = self.parse_column_def()?;
        Ok(Statement::AlterTableAddColumn { table, column })
    }

    // Expression grammar, lowest to highest precedence:
    //   or_expr   := and_expr (OR and_expr)*
    //   and_expr  := not_expr (AND not_expr)*
    //   not_expr  := NOT not_expr | cmp_expr
    //   cmp_expr  := add_expr ((= | <> | < | <= | > | >= | LIKE) add_expr
    //                 | IS [NOT] NULL | [NOT] IN (list))?
    //   add_expr  := mul_expr ((+ | - | ||) mul_expr)*
    //   mul_expr  := unary ((* | /) unary)*
    //   unary     := - unary | primary
    //   primary   := literal | column | aggregate | ( or_expr )
    fn parse_expr(&mut self) -> SqlResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_and()?;
        while self.accept_keyword("or") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_not()?;
        while self.accept_keyword("and") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> SqlResult<Expr> {
        if self.accept_keyword("not") {
            let operand = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> SqlResult<Expr> {
        let left = self.parse_additive()?;
        if self.accept_keyword("is") {
            let negated = self.accept_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        if self.peek_keyword("not")
            && self
                .tokens
                .get(self.pos + 1)
                .map(|t| t.is_keyword("in"))
                .unwrap_or(false)
        {
            self.pos += 2;
            return self.parse_in_list(left, true);
        }
        if self.accept_keyword("in") {
            return self.parse_in_list(left, false);
        }
        if self.accept_keyword("like") {
            let right = self.parse_additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Like,
                right: Box::new(right),
            });
        }
        let op = if self.accept_symbol("=") {
            Some(BinaryOp::Eq)
        } else if self.accept_symbol("<>") || self.accept_symbol("!=") {
            Some(BinaryOp::NotEq)
        } else if self.accept_symbol("<=") {
            Some(BinaryOp::LtEq)
        } else if self.accept_symbol(">=") {
            Some(BinaryOp::GtEq)
        } else if self.accept_symbol("<") {
            Some(BinaryOp::Lt)
        } else if self.accept_symbol(">") {
            Some(BinaryOp::Gt)
        } else {
            None
        };
        match op {
            Some(op) => {
                let right = self.parse_additive()?;
                Ok(Expr::Binary {
                    left: Box::new(left),
                    op,
                    right: Box::new(right),
                })
            }
            None => Ok(left),
        }
    }

    fn parse_in_list(&mut self, left: Expr, negated: bool) -> SqlResult<Expr> {
        self.expect_symbol("(")?;
        let mut list = Vec::new();
        if !self.peek_symbol(")") {
            loop {
                list.push(self.parse_expr()?);
                if !self.accept_symbol(",") {
                    break;
                }
            }
        }
        self.expect_symbol(")")?;
        Ok(Expr::InList {
            expr: Box::new(left),
            list,
            negated,
        })
    }

    fn parse_additive(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.accept_symbol("+") {
                BinaryOp::Add
            } else if self.accept_symbol("-") {
                BinaryOp::Sub
            } else if self.accept_symbol("||") {
                BinaryOp::Concat
            } else {
                break;
            };
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.accept_symbol("*") {
                BinaryOp::Mul
            } else if self.accept_symbol("/") {
                BinaryOp::Div
            } else {
                break;
            };
            let right = self.parse_unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> SqlResult<Expr> {
        if self.accept_symbol("-") {
            let operand = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> SqlResult<Expr> {
        if self.accept_symbol("(") {
            let inner = self.parse_expr()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        let t = self.next()?;
        match t {
            Token::IntLit(i) => Ok(Expr::Literal(Value::Int(i))),
            Token::FloatLit(f) => Ok(Expr::Literal(Value::Float(f))),
            Token::StringLit(s) => Ok(Expr::Literal(Value::Text(s))),
            Token::Ident(name) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => Ok(Expr::Literal(Value::Null)),
                    "true" => Ok(Expr::Literal(Value::Bool(true))),
                    "false" => Ok(Expr::Literal(Value::Bool(false))),
                    "count" | "max" | "min" | "sum" if self.peek_symbol("(") => {
                        self.expect_symbol("(")?;
                        let func = match lower.as_str() {
                            "count" => AggregateFunc::Count,
                            "max" => AggregateFunc::Max,
                            "min" => AggregateFunc::Min,
                            _ => AggregateFunc::Sum,
                        };
                        let arg = if self.accept_symbol("*") {
                            None
                        } else {
                            Some(Box::new(self.parse_expr()?))
                        };
                        self.expect_symbol(")")?;
                        Ok(Expr::Aggregate { func, arg })
                    }
                    _ => Ok(Expr::Column(name)),
                }
            }
            other => Err(SqlError::Parse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_select_with_everything() {
        let stmt = parse(
            "SELECT title, COUNT(*) AS n FROM page WHERE owner = 'alice' AND views >= 10 \
             ORDER BY title DESC LIMIT 5",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.items.len(), 2);
                assert_eq!(s.table, "page");
                assert!(s.where_clause.is_some());
                assert_eq!(s.order_by.len(), 1);
                assert!(!s.order_by[0].ascending);
                assert_eq!(s.limit, Some(5));
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_insert_multi_row() {
        let stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Statement::Insert {
                columns, values, ..
            } => {
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(values.len(), 2);
            }
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn rejects_mismatched_insert_arity() {
        assert!(parse("INSERT INTO t (a, b) VALUES (1)").is_err());
    }

    #[test]
    fn parses_update_and_delete() {
        let stmt = parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        match stmt {
            Statement::Update {
                assignments,
                where_clause,
                ..
            } => {
                assert_eq!(assignments.len(), 2);
                assert!(where_clause.is_some());
            }
            other => panic!("expected update, got {other:?}"),
        }
        let stmt = parse("DELETE FROM t").unwrap();
        assert!(matches!(
            stmt,
            Statement::Delete {
                where_clause: None,
                ..
            }
        ));
    }

    #[test]
    fn parses_create_table_with_constraints() {
        let stmt = parse(
            "CREATE TABLE page (page_id INTEGER PRIMARY KEY, title TEXT NOT NULL, \
             views INTEGER DEFAULT 0, UNIQUE (title))",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable {
                columns,
                constraints,
                ..
            } => {
                assert_eq!(columns.len(), 3);
                assert!(columns[0].is_primary_key());
                assert!(columns[1].is_not_null());
                assert_eq!(columns[2].default, Some(Value::Int(0)));
                assert_eq!(constraints.len(), 1);
            }
            other => panic!("expected create, got {other:?}"),
        }
    }

    #[test]
    fn parses_alter_and_drop() {
        let stmt = parse("ALTER TABLE t ADD COLUMN row_id INTEGER").unwrap();
        assert!(matches!(stmt, Statement::AlterTableAddColumn { .. }));
        let stmt = parse("DROP TABLE t;").unwrap();
        assert!(matches!(stmt, Statement::DropTable { .. }));
    }

    #[test]
    fn parses_in_list_and_is_null() {
        let stmt = parse("SELECT * FROM t WHERE a IN (1, 2, 3) AND b IS NOT NULL").unwrap();
        let w = stmt.where_clause().unwrap().clone();
        let cols = w.referenced_columns();
        assert!(cols.contains(&"a".to_string()) && cols.contains(&"b".to_string()));
    }

    #[test]
    fn parses_not_in() {
        let stmt = parse("SELECT * FROM t WHERE a NOT IN (1, 2)").unwrap();
        match stmt.where_clause().unwrap() {
            Expr::InList { negated, list, .. } => {
                assert!(*negated);
                assert_eq!(list.len(), 2);
            }
            other => panic!("expected IN list, got {other:?}"),
        }
    }

    #[test]
    fn parses_precedence() {
        // a = 1 OR b = 2 AND c = 3 parses as a = 1 OR (b = 2 AND c = 3).
        let stmt = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match stmt.where_clause().unwrap() {
            Expr::Binary {
                op: BinaryOp::Or, ..
            } => {}
            other => panic!("expected OR at top level, got {other:?}"),
        }
    }

    #[test]
    fn parses_string_concat_and_arithmetic() {
        let stmt = parse("UPDATE t SET body = body || '!', n = n * 2 + 1").unwrap();
        match stmt {
            Statement::Update { assignments, .. } => {
                assert!(matches!(
                    assignments[0].value,
                    Expr::Binary {
                        op: BinaryOp::Concat,
                        ..
                    }
                ));
            }
            other => panic!("expected update, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELEKT * FROM t").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra garbage").is_err());
    }
}
