//! Table schemas and column types.

use crate::ast::{ColumnDef, TableConstraint};
use crate::error::{SqlError, SqlResult};
use serde::{Deserialize, Serialize};

/// The declared type of a column.
///
/// Types are advisory (the engine stores dynamically typed [`crate::Value`]s,
/// like SQLite), but they document intent and are used by the time-travel
/// layer when synthesizing its bookkeeping columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit integers.
    Integer,
    /// Floating point.
    Real,
    /// Text.
    Text,
    /// Booleans.
    Boolean,
}

impl ColumnType {
    /// Parses a SQL type name; unknown names default to [`ColumnType::Text`],
    /// mirroring the permissive behaviour of the paper's PostgreSQL schema
    /// rewriting (which never changes application types).
    pub fn from_name(name: &str) -> ColumnType {
        let lower = name.to_ascii_lowercase();
        if lower.contains("int") || lower.contains("serial") {
            ColumnType::Integer
        } else if lower.contains("real")
            || lower.contains("float")
            || lower.contains("double")
            || lower.contains("numeric")
            || lower.contains("decimal")
        {
            ColumnType::Real
        } else if lower.contains("bool") {
            ColumnType::Boolean
        } else {
            ColumnType::Text
        }
    }
}

/// The schema of a single table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Column definitions, in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Uniqueness constraints, each a set of column names. Single-column
    /// `UNIQUE`/`PRIMARY KEY` declarations are normalised into this list.
    pub unique_constraints: Vec<Vec<String>>,
}

impl TableSchema {
    /// Builds a schema from parsed column definitions and table constraints.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        constraints: Vec<TableConstraint>,
    ) -> SqlResult<Self> {
        let name = name.into();
        let mut unique_constraints = Vec::new();
        for col in &columns {
            if col.is_unique() {
                unique_constraints.push(vec![col.name.clone()]);
            }
        }
        for c in constraints {
            match c {
                TableConstraint::Unique(cols) | TableConstraint::PrimaryKey(cols) => {
                    unique_constraints.push(cols);
                }
            }
        }
        let schema = TableSchema {
            name,
            columns,
            unique_constraints,
        };
        for uc in &schema.unique_constraints {
            for col in uc {
                if schema.column_index(col).is_none() {
                    return Err(SqlError::NoSuchColumn(col.clone()));
                }
            }
        }
        Ok(schema)
    }

    /// Returns the index of the named column, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Returns the names of all columns in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// True if the table declares the named column.
    pub fn has_column(&self, name: &str) -> bool {
        self.column_index(name).is_some()
    }

    /// Returns the primary-key column name, if a single-column primary key is
    /// declared.
    pub fn primary_key(&self) -> Option<&str> {
        self.columns
            .iter()
            .find(|c| c.is_primary_key())
            .map(|c| c.name.as_str())
    }

    /// Adds a column to the schema (used by `ALTER TABLE ADD COLUMN`).
    pub fn add_column(&mut self, column: ColumnDef) -> SqlResult<()> {
        if self.has_column(&column.name) {
            return Err(SqlError::ColumnExists(column.name));
        }
        if column.is_unique() {
            self.unique_constraints.push(vec![column.name.clone()]);
        }
        self.columns.push(column);
        Ok(())
    }

    /// Rewrites every uniqueness constraint to also include the given extra
    /// columns. The time-travel layer uses this to allow multiple versions of
    /// a logically unique row to coexist (paper §6).
    pub fn extend_unique_constraints(&mut self, extra: &[&str]) {
        for uc in &mut self.unique_constraints {
            for col in extra {
                if !uc.iter().any(|c| c.eq_ignore_ascii_case(col)) {
                    uc.push((*col).to_string());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnConstraint;

    fn col(name: &str) -> ColumnDef {
        ColumnDef::new(name, ColumnType::Text)
    }

    #[test]
    fn type_names_are_recognised() {
        assert_eq!(ColumnType::from_name("INTEGER"), ColumnType::Integer);
        assert_eq!(ColumnType::from_name("bigint"), ColumnType::Integer);
        assert_eq!(ColumnType::from_name("VARCHAR"), ColumnType::Text);
        assert_eq!(ColumnType::from_name("double precision"), ColumnType::Real);
        assert_eq!(ColumnType::from_name("BOOLEAN"), ColumnType::Boolean);
    }

    #[test]
    fn unique_constraints_are_normalised() {
        let mut pk = col("id");
        pk.constraints.push(ColumnConstraint::PrimaryKey);
        let schema = TableSchema::new(
            "t",
            vec![pk, col("a"), col("b")],
            vec![TableConstraint::Unique(vec!["a".into(), "b".into()])],
        )
        .unwrap();
        assert_eq!(schema.unique_constraints.len(), 2);
        assert_eq!(schema.primary_key(), Some("id"));
    }

    #[test]
    fn constraint_on_missing_column_is_rejected() {
        let err = TableSchema::new(
            "t",
            vec![col("a")],
            vec![TableConstraint::Unique(vec!["missing".into()])],
        )
        .unwrap_err();
        assert_eq!(err, SqlError::NoSuchColumn("missing".into()));
    }

    #[test]
    fn extend_unique_constraints_appends_versioning_columns() {
        let mut pk = col("id");
        pk.constraints.push(ColumnConstraint::PrimaryKey);
        let mut schema = TableSchema::new("t", vec![pk], vec![]).unwrap();
        schema.extend_unique_constraints(&["end_time", "end_gen"]);
        assert_eq!(
            schema.unique_constraints[0],
            vec!["id", "end_time", "end_gen"]
        );
    }

    #[test]
    fn add_column_rejects_duplicates() {
        let mut schema = TableSchema::new("t", vec![col("a")], vec![]).unwrap();
        assert!(schema.add_column(col("b")).is_ok());
        assert!(matches!(
            schema.add_column(col("a")),
            Err(SqlError::ColumnExists(_))
        ));
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let schema = TableSchema::new("t", vec![col("Title")], vec![]).unwrap();
        assert_eq!(schema.column_index("title"), Some(0));
        assert!(schema.has_column("TITLE"));
    }
}
