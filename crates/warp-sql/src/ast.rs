//! Abstract syntax tree for the supported SQL dialect.
//!
//! The AST is a first-class part of the public API: `warp-ttdb` rewrites
//! statements at this level to implement continuous versioning and repair
//! generations, and inspects `WHERE` clauses to compute partition
//! dependencies.

use crate::schema::ColumnType;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// `CREATE TABLE name (...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// Table-level constraints.
        constraints: Vec<TableConstraint>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `ALTER TABLE name ADD COLUMN col`.
    AlterTableAddColumn {
        /// Table name.
        table: String,
        /// The new column.
        column: ColumnDef,
    },
    /// `INSERT INTO table (cols) VALUES (...), (...)`.
    Insert {
        /// Target table.
        table: String,
        /// Column names, in the order values are supplied.
        columns: Vec<String>,
        /// One entry per inserted row.
        values: Vec<Vec<Expr>>,
    },
    /// `SELECT items FROM table WHERE ... ORDER BY ... LIMIT n`.
    Select(SelectStatement),
    /// `UPDATE table SET col = expr, ... WHERE ...`.
    Update {
        /// Target table.
        table: String,
        /// Column assignments.
        assignments: Vec<Assignment>,
        /// Optional filter.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM table WHERE ...`.
    Delete {
        /// Target table.
        table: String,
        /// Optional filter.
        where_clause: Option<Expr>,
    },
}

/// The body of a `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStatement {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Source table (single-table queries only, as in the paper's prototype).
    pub table: String,
    /// Optional filter.
    pub where_clause: Option<Expr>,
    /// Ordering directives, applied in sequence.
    pub order_by: Vec<OrderBy>,
    /// Optional row-count limit.
    pub limit: Option<u64>,
}

/// One element of a `SELECT` projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// An expression, optionally aliased with `AS`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// A single `column = expr` assignment in an `UPDATE`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Column being assigned.
    pub column: String,
    /// Value expression (may reference the row's current column values).
    pub value: Expr,
}

/// `ORDER BY` directive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderBy {
    /// Expression to sort by (usually a column reference).
    pub expr: Expr,
    /// True for ascending order.
    pub ascending: bool,
}

/// A column definition in `CREATE TABLE` / `ALTER TABLE`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub col_type: ColumnType,
    /// Column constraints.
    pub constraints: Vec<ColumnConstraint>,
    /// Default value used when an INSERT omits the column.
    pub default: Option<Value>,
}

impl ColumnDef {
    /// Creates a plain, unconstrained column.
    pub fn new(name: impl Into<String>, col_type: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            col_type,
            constraints: Vec::new(),
            default: None,
        }
    }

    /// True if the column is declared `PRIMARY KEY`.
    pub fn is_primary_key(&self) -> bool {
        self.constraints.contains(&ColumnConstraint::PrimaryKey)
    }

    /// True if the column is declared `UNIQUE` or `PRIMARY KEY`.
    pub fn is_unique(&self) -> bool {
        self.is_primary_key() || self.constraints.contains(&ColumnConstraint::Unique)
    }

    /// True if the column is declared `NOT NULL` (primary keys are implicitly
    /// not null).
    pub fn is_not_null(&self) -> bool {
        self.is_primary_key() || self.constraints.contains(&ColumnConstraint::NotNull)
    }
}

/// Constraints attached to a single column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnConstraint {
    /// `PRIMARY KEY`.
    PrimaryKey,
    /// `UNIQUE`.
    Unique,
    /// `NOT NULL`.
    NotNull,
}

/// Table-level constraints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableConstraint {
    /// `UNIQUE (col, ...)`.
    Unique(Vec<String>),
    /// `PRIMARY KEY (col, ...)`.
    PrimaryKey(Vec<String>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `||` string concatenation
    Concat,
    /// `LIKE`
    Like,
}

impl BinaryOp {
    /// SQL spelling of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Concat => "||",
            BinaryOp::Like => "LIKE",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical `NOT`.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Aggregate functions supported in projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateFunc {
    /// `COUNT(*)` or `COUNT(expr)`.
    Count,
    /// `MAX(expr)`.
    Max,
    /// `MIN(expr)`.
    Min,
    /// `SUM(expr)`.
    Sum,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference.
    Column(String),
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// An aggregate call; only valid in projections.
    Aggregate {
        /// The aggregate function.
        func: AggregateFunc,
        /// The argument; `None` means `*` (COUNT only).
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Convenience constructor for `column = literal`.
    pub fn col_eq(column: impl Into<String>, value: impl Into<Value>) -> Expr {
        Expr::Binary {
            left: Box::new(Expr::Column(column.into())),
            op: BinaryOp::Eq,
            right: Box::new(Expr::Literal(value.into())),
        }
    }

    /// Joins two expressions with `AND`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinaryOp::And,
            right: Box::new(other),
        }
    }

    /// Joins two expressions with `OR`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinaryOp::Or,
            right: Box::new(other),
        }
    }

    /// Collects the names of all columns referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut cols = Vec::new();
        self.walk_columns(&mut |c| cols.push(c.to_string()));
        cols
    }

    fn walk_columns(&self, f: &mut impl FnMut(&str)) {
        match self {
            Expr::Literal(_) => {}
            Expr::Column(c) => f(c),
            Expr::Binary { left, right, .. } => {
                left.walk_columns(f);
                right.walk_columns(f);
            }
            Expr::Unary { operand, .. } => operand.walk_columns(f),
            Expr::InList { expr, list, .. } => {
                expr.walk_columns(f);
                for e in list {
                    e.walk_columns(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.walk_columns(f),
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.walk_columns(f);
                }
            }
        }
    }

    /// Extracts `column = literal` equality constraints that are *required*
    /// for this expression to be true (i.e. conjuncts of the top-level AND
    /// chain). This is how the time-travel database determines which
    /// partitions a query touches (§4.1 of the paper).
    pub fn required_equalities(&self) -> Vec<(String, Value)> {
        let mut out = Vec::new();
        self.collect_required_equalities(&mut out);
        out
    }

    fn collect_required_equalities(&self, out: &mut Vec<(String, Value)>) {
        match self {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                left.collect_required_equalities(out);
                right.collect_required_equalities(out);
            }
            Expr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            } => match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => {
                    out.push((c.clone(), v.clone()));
                }
                _ => {}
            },
            _ => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{}", v.to_sql_literal()),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Binary { left, op, right } => write!(f, "({left} {} {right})", op.as_str()),
            Expr::Unary { op, operand } => match op {
                UnaryOp::Not => write!(f, "(NOT {operand})"),
                UnaryOp::Neg => write!(f, "(-{operand})"),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "({expr} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Aggregate { func, arg } => {
                let name = match func {
                    AggregateFunc::Count => "COUNT",
                    AggregateFunc::Max => "MAX",
                    AggregateFunc::Min => "MIN",
                    AggregateFunc::Sum => "SUM",
                };
                match arg {
                    Some(a) => write!(f, "{name}({a})"),
                    None => write!(f, "{name}(*)"),
                }
            }
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable { name, columns, .. } => {
                write!(f, "CREATE TABLE {name} ({} columns)", columns.len())
            }
            Statement::DropTable { name } => write!(f, "DROP TABLE {name}"),
            Statement::AlterTableAddColumn { table, column } => {
                write!(f, "ALTER TABLE {table} ADD COLUMN {}", column.name)
            }
            Statement::Insert { table, values, .. } => {
                write!(f, "INSERT INTO {table} ({} rows)", values.len())
            }
            Statement::Select(s) => match &s.where_clause {
                Some(w) => write!(f, "SELECT FROM {} WHERE {w}", s.table),
                None => write!(f, "SELECT FROM {}", s.table),
            },
            Statement::Update {
                table,
                where_clause,
                ..
            } => match where_clause {
                Some(w) => write!(f, "UPDATE {table} WHERE {w}"),
                None => write!(f, "UPDATE {table}"),
            },
            Statement::Delete {
                table,
                where_clause,
            } => match where_clause {
                Some(w) => write!(f, "DELETE FROM {table} WHERE {w}"),
                None => write!(f, "DELETE FROM {table}"),
            },
        }
    }
}

impl Statement {
    /// Returns the name of the table this statement operates on, if any.
    pub fn table_name(&self) -> Option<&str> {
        match self {
            Statement::CreateTable { name, .. } | Statement::DropTable { name } => Some(name),
            Statement::AlterTableAddColumn { table, .. }
            | Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. } => Some(table),
            Statement::Select(s) => Some(&s.table),
        }
    }

    /// True if executing this statement can modify stored data.
    pub fn is_write(&self) -> bool {
        !matches!(self, Statement::Select(_))
    }

    /// Returns the statement's `WHERE` clause, if it has one.
    pub fn where_clause(&self) -> Option<&Expr> {
        match self {
            Statement::Select(s) => s.where_clause.as_ref(),
            Statement::Update { where_clause, .. } | Statement::Delete { where_clause, .. } => {
                where_clause.as_ref()
            }
            _ => None,
        }
    }

    /// Returns a mutable reference to the statement's `WHERE` clause slot, if
    /// the statement kind supports one. Used by the query rewriter.
    pub fn where_clause_mut(&mut self) -> Option<&mut Option<Expr>> {
        match self {
            Statement::Select(s) => Some(&mut s.where_clause),
            Statement::Update { where_clause, .. } | Statement::Delete { where_clause, .. } => {
                Some(where_clause)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_equalities_only_from_and_chain() {
        // (a = 1 AND b = 'x') => both required.
        let e = Expr::col_eq("a", 1i64).and(Expr::col_eq("b", "x"));
        let eqs = e.required_equalities();
        assert_eq!(eqs.len(), 2);
        // (a = 1 OR b = 'x') => neither is required.
        let e = Expr::col_eq("a", 1i64).or(Expr::col_eq("b", "x"));
        assert!(e.required_equalities().is_empty());
    }

    #[test]
    fn referenced_columns_walks_nested() {
        let e = Expr::col_eq("a", 1i64).and(Expr::IsNull {
            expr: Box::new(Expr::Column("b".into())),
            negated: false,
        });
        let mut cols = e.referenced_columns();
        cols.sort();
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn statement_table_name_and_write_flag() {
        let s = Statement::Delete {
            table: "t".into(),
            where_clause: None,
        };
        assert_eq!(s.table_name(), Some("t"));
        assert!(s.is_write());
    }

    #[test]
    fn expr_display_roundtrips_syntax() {
        let e = Expr::col_eq("a", 1i64).and(Expr::Column("b".into()));
        assert_eq!(e.to_string(), "((a = 1) AND b)");
    }
}
