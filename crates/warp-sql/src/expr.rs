//! Expression evaluation against a row.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::error::{SqlError, SqlResult};
use crate::schema::TableSchema;
use crate::storage::Row;
use crate::value::Value;

/// Evaluates an expression against a single row of the given schema.
///
/// Aggregates are rejected here; the executor handles them separately.
pub fn eval_expr(expr: &Expr, schema: &TableSchema, row: &Row) -> SqlResult<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(name) => {
            #[cfg(debug_assertions)]
            crate::observer::record(name);
            let idx = schema
                .column_index(name)
                .ok_or_else(|| SqlError::NoSuchColumn(name.clone()))?;
            Ok(row.get(idx).cloned().unwrap_or(Value::Null))
        }
        Expr::Unary { op, operand } => {
            let v = eval_expr(operand, schema, row)?;
            match op {
                UnaryOp::Not => Ok(Value::Bool(!v.is_truthy())),
                UnaryOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    Value::Null => Ok(Value::Null),
                    other => Err(SqlError::Type(format!("cannot negate {other:?}"))),
                },
            }
        }
        Expr::Binary { left, op, right } => {
            let l = eval_expr(left, schema, row)?;
            let r = eval_expr(right, schema, row)?;
            eval_binary(&l, *op, &r)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(expr, schema, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let iv = eval_expr(item, schema, row)?;
                if v.sql_eq(&iv) == Some(true) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(expr, schema, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Aggregate { .. } => Err(SqlError::Execution(
            "aggregate used outside a projection".into(),
        )),
    }
}

/// Evaluates a binary operation over two already-computed values.
pub fn eval_binary(l: &Value, op: BinaryOp, r: &Value) -> SqlResult<Value> {
    use BinaryOp::*;
    match op {
        And => Ok(Value::Bool(l.is_truthy() && r.is_truthy())),
        Or => Ok(Value::Bool(l.is_truthy() || r.is_truthy())),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = l.cmp_total(r);
            let result = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                NotEq => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(result))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic when both sides are integers, float otherwise.
            if let (Value::Int(a), Value::Int(b)) = (l, r) {
                let v = match op {
                    Add => a.wrapping_add(*b),
                    Sub => a.wrapping_sub(*b),
                    Mul => a.wrapping_mul(*b),
                    Div => {
                        if *b == 0 {
                            return Err(SqlError::Execution("division by zero".into()));
                        }
                        a / b
                    }
                    _ => unreachable!(),
                };
                return Ok(Value::Int(v));
            }
            let a = l
                .as_float()
                .ok_or_else(|| SqlError::Type(format!("non-numeric {l:?}")))?;
            let b = r
                .as_float()
                .ok_or_else(|| SqlError::Type(format!("non-numeric {r:?}")))?;
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(SqlError::Execution("division by zero".into()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
        Concat => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Text(format!(
                "{}{}",
                l.as_display_string(),
                r.as_display_string()
            )))
        }
        Like => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Bool(like_match(
                &l.as_display_string(),
                &r.as_display_string(),
            )))
        }
    }
}

/// SQL `LIKE` matching: `%` matches any run of characters, `_` any single
/// character. Matching is case-sensitive, as in PostgreSQL.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Try consuming zero or more characters.
                (0..=t.len()).any(|k| rec(&t[k..], &p[1..]))
            }
            Some('_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(c) => t.first() == Some(c) && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnDef;
    use crate::schema::ColumnType;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Integer),
                ColumnDef::new("name", ColumnType::Text),
            ],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn column_lookup_and_comparison() {
        let s = schema();
        let row = vec![Value::Int(7), Value::text("alice")];
        let e = Expr::col_eq("id", 7i64);
        assert_eq!(eval_expr(&e, &s, &row).unwrap(), Value::Bool(true));
        let e = Expr::col_eq("name", "bob");
        assert_eq!(eval_expr(&e, &s, &row).unwrap(), Value::Bool(false));
    }

    #[test]
    fn missing_column_errors() {
        let s = schema();
        let row = vec![Value::Int(1), Value::Null];
        assert!(matches!(
            eval_expr(&Expr::Column("missing".into()), &s, &row),
            Err(SqlError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        assert_eq!(
            eval_binary(&Value::Int(6), BinaryOp::Mul, &Value::Int(7)).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            eval_binary(&Value::Int(7), BinaryOp::Div, &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert!(eval_binary(&Value::Int(1), BinaryOp::Div, &Value::Int(0)).is_err());
        assert_eq!(
            eval_binary(&Value::Float(1.5), BinaryOp::Add, &Value::Int(1)).unwrap(),
            Value::Float(2.5)
        );
    }

    #[test]
    fn null_propagation() {
        assert_eq!(
            eval_binary(&Value::Null, BinaryOp::Eq, &Value::Int(1)).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_binary(&Value::Null, BinaryOp::Add, &Value::Int(1)).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_binary(&Value::Null, BinaryOp::Concat, &Value::text("x")).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn concat_builds_strings() {
        assert_eq!(
            eval_binary(&Value::text("a"), BinaryOp::Concat, &Value::Int(3)).unwrap(),
            Value::text("a3")
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "H%"));
        assert!(!like_match("hello", "hello_"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn in_list_with_null() {
        let s = schema();
        let row = vec![Value::Int(1), Value::Null];
        let e = Expr::InList {
            expr: Box::new(Expr::Column("id".into())),
            list: vec![Expr::Literal(Value::Int(1)), Expr::Literal(Value::Int(2))],
            negated: false,
        };
        assert_eq!(eval_expr(&e, &s, &row).unwrap(), Value::Bool(true));
        let e = Expr::IsNull {
            expr: Box::new(Expr::Column("name".into())),
            negated: false,
        };
        assert_eq!(eval_expr(&e, &s, &row).unwrap(), Value::Bool(true));
    }
}
