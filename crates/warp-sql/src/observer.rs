//! Debug-build observer of dynamically read columns.
//!
//! The static analysis in [`crate::analysis`] claims its footprints are
//! conservative: every column a statement actually reads at runtime is in
//! its static read set. This module lets the time-travel layer check that
//! claim in debug/test builds: it arms a thread-local recorder around a
//! statement's execution, [`eval_expr`](crate::expr::eval_expr) reports
//! every column it resolves, and the caller asserts the observed set is a
//! subset of the static footprint. Analyzer bugs then surface as panics in
//! the ordinary test suites instead of silent wrong repairs.
//!
//! The whole module only exists under `cfg(debug_assertions)`; release
//! builds carry no recording overhead.

use std::cell::RefCell;
use std::collections::BTreeSet;

thread_local! {
    static OBSERVED: RefCell<Option<BTreeSet<String>>> = const { RefCell::new(None) };
}

/// Starts recording column reads on this thread, discarding any prior
/// recording state.
pub fn arm() {
    OBSERVED.with(|o| *o.borrow_mut() = Some(BTreeSet::new()));
}

/// Stops recording and returns the (lower-cased) columns observed since
/// [`arm`], or `None` if the recorder was not armed.
pub fn take() -> Option<BTreeSet<String>> {
    OBSERVED.with(|o| o.borrow_mut().take())
}

/// Reports one column resolution. No-op unless armed.
pub(crate) fn record(name: &str) {
    OBSERVED.with(|o| {
        if let Some(set) = o.borrow_mut().as_mut() {
            set.insert(name.to_ascii_lowercase());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_while_armed() {
        record("ghost");
        assert_eq!(take(), None);
        arm();
        record("Title");
        record("body");
        record("title");
        let got = take().unwrap();
        assert_eq!(
            got.into_iter().collect::<Vec<_>>(),
            vec!["body".to_string(), "title".to_string()]
        );
        // Recorder is disarmed after take().
        record("late");
        assert_eq!(take(), None);
    }
}
