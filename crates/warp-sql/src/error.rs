//! Error types for the SQL engine.

use std::fmt;

/// Result alias used throughout `warp-sql`.
pub type SqlResult<T> = Result<T, SqlError>;

/// Errors produced by the lexer, parser or executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The input could not be tokenized.
    Lex(String),
    /// The token stream could not be parsed into a statement.
    Parse(String),
    /// The statement referenced a table that does not exist.
    NoSuchTable(String),
    /// The statement referenced a column that does not exist.
    NoSuchColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A column with this name already exists in the table.
    ColumnExists(String),
    /// A uniqueness or primary-key constraint was violated.
    UniqueViolation {
        /// Table whose constraint was violated.
        table: String,
        /// Columns participating in the violated constraint.
        columns: Vec<String>,
    },
    /// A NOT NULL constraint was violated.
    NotNullViolation {
        /// Table whose constraint was violated.
        table: String,
        /// The column that may not be NULL.
        column: String,
    },
    /// A value could not be used where another type was required.
    Type(String),
    /// Any other execution error.
    Execution(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(msg) => write!(f, "lex error: {msg}"),
            SqlError::Parse(msg) => write!(f, "parse error: {msg}"),
            SqlError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            SqlError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            SqlError::TableExists(t) => write!(f, "table already exists: {t}"),
            SqlError::ColumnExists(c) => write!(f, "column already exists: {c}"),
            SqlError::UniqueViolation { table, columns } => {
                write!(
                    f,
                    "unique constraint violated on {table}({})",
                    columns.join(", ")
                )
            }
            SqlError::NotNullViolation { table, column } => {
                write!(f, "not-null constraint violated on {table}.{column}")
            }
            SqlError::Type(msg) => write!(f, "type error: {msg}"),
            SqlError::Execution(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SqlError::UniqueViolation {
            table: "page".into(),
            columns: vec!["title".into(), "end_gen".into()],
        };
        assert_eq!(
            e.to_string(),
            "unique constraint violated on page(title, end_gen)"
        );
        assert_eq!(
            SqlError::NoSuchTable("x".into()).to_string(),
            "no such table: x"
        );
    }
}
