//! SQL tokenizer.

use crate::error::{SqlError, SqlResult};

/// A single SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (keywords are matched case-insensitively
    /// by the parser; the original spelling is preserved here).
    Ident(String),
    /// Quoted string literal with escapes already resolved.
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// A punctuation or operator symbol such as `(`, `,`, `=`, `<=`, `||`.
    Symbol(String),
}

impl Token {
    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// True if this token is the given symbol.
    pub fn is_symbol(&self, sym: &str) -> bool {
        matches!(self, Token::Symbol(s) if s == sym)
    }
}

/// Tokenizes a SQL string.
///
/// String literals use single quotes with `''` as the escape for a literal
/// quote. Identifiers may be double-quoted to preserve case or include
/// reserved words. Line comments (`--`) are skipped.
pub fn tokenize(input: &str) -> SqlResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && i + 1 < chars.len() && chars[i + 1] == '-' {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '\'' {
            let mut s = String::new();
            i += 1;
            loop {
                if i >= chars.len() {
                    return Err(SqlError::Lex("unterminated string literal".into()));
                }
                if chars[i] == '\'' {
                    if i + 1 < chars.len() && chars[i + 1] == '\'' {
                        s.push('\'');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                s.push(chars[i]);
                i += 1;
            }
            tokens.push(Token::StringLit(s));
            continue;
        }
        if c == '"' {
            let mut s = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                s.push(chars[i]);
                i += 1;
            }
            if i >= chars.len() {
                return Err(SqlError::Lex("unterminated quoted identifier".into()));
            }
            i += 1;
            tokens.push(Token::Ident(s));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                if chars[i] == '.' {
                    // `1..2` is not a float; only consume a single dot followed by a digit.
                    if is_float || i + 1 >= chars.len() || !chars[i + 1].is_ascii_digit() {
                        break;
                    }
                    is_float = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if is_float {
                let v = text
                    .parse::<f64>()
                    .map_err(|_| SqlError::Lex(format!("bad float literal: {text}")))?;
                tokens.push(Token::FloatLit(v));
            } else {
                let v = text
                    .parse::<i64>()
                    .map_err(|_| SqlError::Lex(format!("bad integer literal: {text}")))?;
                tokens.push(Token::IntLit(v));
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            tokens.push(Token::Ident(chars[start..i].iter().collect()));
            continue;
        }
        // Multi-character operators first.
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        if ["<=", ">=", "<>", "!=", "||"].contains(&two.as_str()) {
            tokens.push(Token::Symbol(two));
            i += 2;
            continue;
        }
        if "(),=<>*+-/.;".contains(c) {
            tokens.push(Token::Symbol(c.to_string()));
            i += 1;
            continue;
        }
        return Err(SqlError::Lex(format!("unexpected character: {c:?}")));
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basic_select() {
        let toks = tokenize("SELECT a, b FROM t WHERE a = 'x''y' AND b >= 4.5").unwrap();
        assert!(toks[0].is_keyword("select"));
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::StringLit(s) if s == "x'y")));
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::FloatLit(f) if (*f - 4.5).abs() < 1e-9)));
        assert!(toks.iter().any(|t| t.is_symbol(">=")));
    }

    #[test]
    fn tokenizes_operators_and_comments() {
        let toks = tokenize("a || b -- comment\n , c <> d").unwrap();
        assert!(toks.iter().any(|t| t.is_symbol("||")));
        assert!(toks.iter().any(|t| t.is_symbol("<>")));
        assert!(!toks.iter().any(|t| t.is_keyword("comment")));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(matches!(tokenize("SELECT 'abc"), Err(SqlError::Lex(_))));
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("SELECT \"Select\" FROM t").unwrap();
        assert_eq!(toks[1], Token::Ident("Select".into()));
    }

    #[test]
    fn integer_vs_float() {
        let toks = tokenize("1 2.5 3").unwrap();
        assert_eq!(
            toks,
            vec![Token::IntLit(1), Token::FloatLit(2.5), Token::IntLit(3)]
        );
    }
}
