//! Static column-footprint analysis over parsed SQL statements.
//!
//! The repair engine's dependency tracking is row/partition-grained: patched
//! code that touches one column of a hot row drags every reader of that row
//! into the repair frontier. This module computes, purely from the AST, a
//! *conservative* column-granularity footprint for each statement — which
//! columns a query's result can depend on, which columns it can change, and
//! whether the touched row set is bounded by a unique or partition key — so
//! the time-travel layer can skip re-executing actions whose read columns are
//! provably disjoint from a repair's dirty column set.
//!
//! Conservatism contract (checked by a runtime guard in debug builds and by
//! the footprint-soundness proptest):
//!
//! * `read_columns` ⊇ every column whose stored value can influence the
//!   statement's result (projections, predicates, `ORDER BY`, value
//!   subexpressions).
//! * `write_columns` ⊇ every column whose stored value the statement can
//!   change. `INSERT` and `DELETE` change *row membership* — whether a row
//!   exists at all — which every reader of the table implicitly depends on,
//!   so their effective write set is [`ColumnSet::All`] regardless of the
//!   syntactic column list.
//! * Anything the analyzer cannot bound collapses into [`ColumnSet::All`]
//!   (`SELECT *` is the common case) and is labelled [`Precision::Imprecise`].
//!   `All` intersects everything, so imprecise footprints degrade exactly to
//!   the row/partition-grained behavior of the column-oblivious engine.

use crate::ast::{Expr, SelectItem, Statement};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A set of column names of one table, with an explicit "every column"
/// top element.
///
/// `All` additionally models *row membership*: a statement whose write set
/// is `All` may create or delete rows, which affects even queries that
/// reference no column at all (`SELECT COUNT(*)`). Consequently
/// `All.intersects(Named(∅))` is true while `Named(∅)` intersects nothing
/// else — an empty named read set depends only on which rows exist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnSet {
    /// Every column of the table, plus row membership.
    All,
    /// An explicit set of (lower-cased) column names.
    Named(BTreeSet<String>),
}

impl ColumnSet {
    /// The empty set.
    pub fn empty() -> ColumnSet {
        ColumnSet::Named(BTreeSet::new())
    }

    /// The top element: every column plus row membership.
    pub fn all() -> ColumnSet {
        ColumnSet::All
    }

    /// A set holding the given column names (lower-cased).
    pub fn named<I, S>(names: I) -> ColumnSet
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        ColumnSet::Named(
            names
                .into_iter()
                .map(|n| n.as_ref().to_ascii_lowercase())
                .collect(),
        )
    }

    /// True for the `All` top element.
    pub fn is_all(&self) -> bool {
        matches!(self, ColumnSet::All)
    }

    /// True for an empty named set (`All` is never empty).
    pub fn is_empty(&self) -> bool {
        match self {
            ColumnSet::All => false,
            ColumnSet::Named(names) => names.is_empty(),
        }
    }

    /// Adds one column name (lower-cased). No-op on `All`.
    pub fn insert(&mut self, name: &str) {
        if let ColumnSet::Named(names) = self {
            names.insert(name.to_ascii_lowercase());
        }
    }

    /// Widens this set to include `other`.
    pub fn union_with(&mut self, other: &ColumnSet) {
        match (&mut *self, other) {
            (ColumnSet::All, _) => {}
            (_, ColumnSet::All) => *self = ColumnSet::All,
            (ColumnSet::Named(a), ColumnSet::Named(b)) => {
                a.extend(b.iter().cloned());
            }
        }
    }

    /// True if the two sets can refer to a common column — or, when either
    /// side is `All`, if the other side could be affected by row membership
    /// changes (which is always).
    pub fn intersects(&self, other: &ColumnSet) -> bool {
        match (self, other) {
            (ColumnSet::All, _) | (_, ColumnSet::All) => true,
            (ColumnSet::Named(a), ColumnSet::Named(b)) => {
                if a.len() > b.len() {
                    b.iter().any(|c| a.contains(c))
                } else {
                    a.iter().any(|c| b.contains(c))
                }
            }
        }
    }

    /// True if the set contains the (lower-cased) column.
    pub fn contains(&self, name: &str) -> bool {
        match self {
            ColumnSet::All => true,
            ColumnSet::Named(names) => names.contains(&name.to_ascii_lowercase()),
        }
    }

    /// True if every column of `other` is in `self` (with `All` ⊇ anything,
    /// and nothing but `All` ⊇ `All`).
    pub fn contains_set(&self, other: &ColumnSet) -> bool {
        match (self, other) {
            (ColumnSet::All, _) => true,
            (ColumnSet::Named(_), ColumnSet::All) => false,
            (ColumnSet::Named(a), ColumnSet::Named(b)) => b.is_subset(a),
        }
    }
}

impl fmt::Display for ColumnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnSet::All => write!(f, "*"),
            ColumnSet::Named(names) => {
                let list: Vec<&str> = names.iter().map(String::as_str).collect();
                write!(f, "{{{}}}", list.join(", "))
            }
        }
    }
}

/// How much the analyzer could prove about a statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// Both the column sets and the touched row set are tightly derived
    /// from the statement.
    Exact,
    /// Something defeated the analysis (the reason says what); the affected
    /// column set has been widened to `All` and/or the row bound dropped, so
    /// the footprint is still sound — just no better than partition-grained.
    Imprecise(String),
}

impl Precision {
    /// True for [`Precision::Imprecise`].
    pub fn is_imprecise(&self) -> bool {
        matches!(self, Precision::Imprecise(_))
    }
}

/// The conservative static footprint of one statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatementFootprint {
    /// The (lower-cased) table the statement touches.
    pub table: String,
    /// Columns the statement's result or effect can depend on.
    pub read_columns: ColumnSet,
    /// Columns the statement names as written (`SET` list, insert columns).
    /// For the set actually used in dependency checks see
    /// [`StatementFootprint::effective_write_columns`].
    pub write_columns: ColumnSet,
    /// True if the statement can change which rows exist (INSERT, DELETE,
    /// DDL). Membership changes affect every reader of the table.
    pub membership_write: bool,
    /// True if the touched row set is provably bounded by a unique or
    /// partition key (required `col = literal` equalities cover one).
    pub key_bounded: bool,
    /// Whether the analysis had to give anything up.
    pub precision: Precision,
}

impl StatementFootprint {
    /// The write set dependency checks must use: the syntactic column list,
    /// widened to `All` when the statement can change row membership.
    pub fn effective_write_columns(&self) -> ColumnSet {
        if self.membership_write {
            ColumnSet::All
        } else {
            self.write_columns.clone()
        }
    }
}

impl fmt::Display for StatementFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: read {} write {}{}{}{}",
            self.table,
            self.read_columns,
            self.effective_write_columns(),
            if self.membership_write {
                " (membership)"
            } else {
                ""
            },
            if self.key_bounded {
                " key-bounded"
            } else {
                " unbounded-rows"
            },
            match &self.precision {
                Precision::Exact => String::new(),
                Precision::Imprecise(reason) => format!(" IMPRECISE: {reason}"),
            },
        )
    }
}

/// Unique/partition key knowledge the analyzer uses to decide
/// [`StatementFootprint::key_bounded`]. Learned from `CREATE TABLE`
/// statements via [`KeyCatalog::observe`] and/or declared directly with
/// [`KeyCatalog::add_key`] (partition columns are single-column keys for
/// bounding purposes: pinning one bounds the touched row set to one
/// partition).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeyCatalog {
    keys: BTreeMap<String, Vec<BTreeSet<String>>>,
}

impl KeyCatalog {
    /// An empty catalog (nothing is key-bounded).
    pub fn new() -> KeyCatalog {
        KeyCatalog::default()
    }

    /// Registers one key: pinning all of `columns` with equalities bounds
    /// the touched row set of a statement on `table`.
    pub fn add_key<I, S>(&mut self, table: &str, columns: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let key: BTreeSet<String> = columns
            .into_iter()
            .map(|c| c.as_ref().to_ascii_lowercase())
            .collect();
        if !key.is_empty() {
            self.keys
                .entry(table.to_ascii_lowercase())
                .or_default()
                .push(key);
        }
    }

    /// Learns `PRIMARY KEY` / `UNIQUE` keys from a `CREATE TABLE` statement.
    /// Other statements are ignored.
    pub fn observe(&mut self, stmt: &Statement) {
        if let Statement::CreateTable {
            name,
            columns,
            constraints,
        } = stmt
        {
            for col in columns {
                if col.is_unique() {
                    self.add_key(name, [col.name.as_str()]);
                }
            }
            for constraint in constraints {
                let (crate::ast::TableConstraint::Unique(cols)
                | crate::ast::TableConstraint::PrimaryKey(cols)) = constraint;
                self.add_key(name, cols.iter().map(String::as_str));
            }
        }
    }

    /// True if the given pinned (lower-cased) equality columns cover at
    /// least one registered key of `table`.
    pub fn bounds(&self, table: &str, pinned: &BTreeSet<String>) -> bool {
        self.keys
            .get(&table.to_ascii_lowercase())
            .map(|keys| keys.iter().any(|key| key.is_subset(pinned)))
            .unwrap_or(false)
    }
}

fn columns_of_expr(expr: &Expr, out: &mut ColumnSet) {
    for column in expr.referenced_columns() {
        out.insert(&column);
    }
}

fn pinned_columns(where_clause: Option<&Expr>) -> BTreeSet<String> {
    where_clause
        .map(|w| {
            w.required_equalities()
                .into_iter()
                .map(|(c, _)| c.to_ascii_lowercase())
                .collect()
        })
        .unwrap_or_default()
}

/// Computes the conservative static footprint of a statement. `keys` decides
/// [`StatementFootprint::key_bounded`]; pass an empty [`KeyCatalog`] when key
/// information is unavailable (everything is then row-unbounded, which is the
/// conservative answer).
pub fn analyze(stmt: &Statement, keys: &KeyCatalog) -> StatementFootprint {
    let table = stmt.table_name().unwrap_or_default().to_ascii_lowercase();
    let mut read = ColumnSet::empty();
    let mut imprecise: Option<String> = None;
    match stmt {
        Statement::Select(select) => {
            for item in &select.items {
                match item {
                    SelectItem::Wildcard => {
                        read = ColumnSet::All;
                        imprecise.get_or_insert_with(|| "SELECT * projection".to_string());
                    }
                    SelectItem::Expr { expr, .. } => columns_of_expr(expr, &mut read),
                }
            }
            if let Some(w) = &select.where_clause {
                columns_of_expr(w, &mut read);
            }
            for order in &select.order_by {
                columns_of_expr(&order.expr, &mut read);
            }
            let key_bounded = keys.bounds(&table, &pinned_columns(select.where_clause.as_ref()));
            if !key_bounded {
                imprecise.get_or_insert_with(|| "whole-table scan (row set unbounded)".to_string());
            }
            StatementFootprint {
                table,
                read_columns: read,
                write_columns: ColumnSet::empty(),
                membership_write: false,
                key_bounded,
                precision: imprecise
                    .map(Precision::Imprecise)
                    .unwrap_or(Precision::Exact),
            }
        }
        Statement::Insert {
            columns, values, ..
        } => {
            for row in values {
                for expr in row {
                    columns_of_expr(expr, &mut read);
                }
            }
            StatementFootprint {
                table,
                read_columns: read,
                write_columns: ColumnSet::named(columns.iter().map(String::as_str)),
                membership_write: true,
                // An INSERT touches exactly the rows it creates.
                key_bounded: true,
                precision: Precision::Exact,
            }
        }
        Statement::Update {
            assignments,
            where_clause,
            ..
        } => {
            if let Some(w) = where_clause {
                columns_of_expr(w, &mut read);
            }
            let mut write = ColumnSet::empty();
            for assignment in assignments {
                write.insert(&assignment.column);
                columns_of_expr(&assignment.value, &mut read);
            }
            let key_bounded = keys.bounds(&table, &pinned_columns(where_clause.as_ref()));
            if !key_bounded {
                imprecise.get_or_insert_with(|| "unbounded UPDATE row set".to_string());
            }
            StatementFootprint {
                table,
                read_columns: read,
                write_columns: write,
                membership_write: false,
                key_bounded,
                precision: imprecise
                    .map(Precision::Imprecise)
                    .unwrap_or(Precision::Exact),
            }
        }
        Statement::Delete { where_clause, .. } => {
            if let Some(w) = where_clause {
                columns_of_expr(w, &mut read);
            }
            let key_bounded = keys.bounds(&table, &pinned_columns(where_clause.as_ref()));
            if !key_bounded {
                imprecise.get_or_insert_with(|| "unbounded DELETE row set".to_string());
            }
            StatementFootprint {
                table,
                read_columns: read,
                write_columns: ColumnSet::empty(),
                membership_write: true,
                key_bounded,
                precision: imprecise
                    .map(Precision::Imprecise)
                    .unwrap_or(Precision::Exact),
            }
        }
        Statement::CreateTable { .. }
        | Statement::DropTable { .. }
        | Statement::AlterTableAddColumn { .. } => StatementFootprint {
            table,
            read_columns: ColumnSet::empty(),
            write_columns: ColumnSet::All,
            membership_write: true,
            key_bounded: false,
            precision: Precision::Imprecise("DDL rewrites the whole table".to_string()),
        },
    }
}

/// The columns a statement's result or effect can depend on — shorthand for
/// [`analyze`] when no key information is needed.
pub fn read_columns(stmt: &Statement) -> ColumnSet {
    analyze(stmt, &KeyCatalog::new()).read_columns
}

/// The columns a statement can change, including the `All` widening for
/// membership writes — shorthand for [`analyze`] when no key information is
/// needed.
pub fn write_columns(stmt: &Statement) -> ColumnSet {
    analyze(stmt, &KeyCatalog::new()).effective_write_columns()
}

/// One precision-defeating or injection-adjacent shape found by the lint
/// pass (see also `warp-analyze`, which adds WASL-level concatenation
/// checks on top of these statement-level ones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Stable machine-readable rule name.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Statement-level lints: `SELECT *` (defeats column pruning) and writes
/// with no `WHERE` clause (whole-table write sets defeat row pruning).
pub fn lint_statement(stmt: &Statement) -> Vec<Lint> {
    let mut lints = Vec::new();
    match stmt {
        Statement::Select(select)
            if select
                .items
                .iter()
                .any(|i| matches!(i, SelectItem::Wildcard)) =>
        {
            lints.push(Lint {
                rule: "select-star",
                message: format!(
                    "SELECT * on `{}` reads every column; name the columns so repair \
                     can prune readers",
                    select.table
                ),
            });
        }
        Statement::Update {
            table,
            where_clause: None,
            ..
        } => lints.push(Lint {
            rule: "unbounded-write",
            message: format!("UPDATE `{table}` has no WHERE clause (whole-table write set)"),
        }),
        Statement::Delete {
            table,
            where_clause: None,
        } => lints.push(Lint {
            rule: "unbounded-write",
            message: format!("DELETE FROM `{table}` has no WHERE clause (whole-table write set)"),
        }),
        _ => {}
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn catalog() -> KeyCatalog {
        let mut keys = KeyCatalog::new();
        let create =
            parse("CREATE TABLE page (page_id INTEGER PRIMARY KEY, title TEXT UNIQUE, body TEXT)")
                .unwrap();
        keys.observe(&create);
        keys
    }

    #[test]
    fn column_set_intersection_semantics() {
        let all = ColumnSet::All;
        let empty = ColumnSet::empty();
        let ab = ColumnSet::named(["a", "b"]);
        let bc = ColumnSet::named(["B", "c"]);
        let d = ColumnSet::named(["d"]);
        // All models row membership, so it intersects even the empty set.
        assert!(all.intersects(&empty));
        assert!(empty.intersects(&all));
        assert!(all.intersects(&all));
        // Named sets intersect set-wise, case-insensitively.
        assert!(ab.intersects(&bc));
        assert!(!ab.intersects(&d));
        assert!(!empty.intersects(&ab));
        assert!(!empty.intersects(&empty));
    }

    #[test]
    fn column_set_subset_and_union() {
        let mut s = ColumnSet::named(["a"]);
        s.union_with(&ColumnSet::named(["b"]));
        assert!(s.contains("A") && s.contains("b"));
        assert!(ColumnSet::All.contains_set(&s));
        assert!(!s.contains_set(&ColumnSet::All));
        assert!(s.contains_set(&ColumnSet::named(["b"])));
        s.union_with(&ColumnSet::All);
        assert!(s.is_all());
    }

    #[test]
    fn select_footprint_reads_projection_where_and_order() {
        let stmt = parse("SELECT title FROM page WHERE page_id = 1 ORDER BY body").unwrap();
        let fp = analyze(&stmt, &catalog());
        assert_eq!(
            fp.read_columns,
            ColumnSet::named(["title", "page_id", "body"])
        );
        assert!(fp.write_columns.is_empty());
        assert!(!fp.membership_write);
        assert!(fp.key_bounded);
        assert_eq!(fp.precision, Precision::Exact);
    }

    #[test]
    fn select_star_is_imprecise_all() {
        let stmt = parse("SELECT * FROM page WHERE page_id = 1").unwrap();
        let fp = analyze(&stmt, &catalog());
        assert!(fp.read_columns.is_all());
        assert!(fp.precision.is_imprecise());
        // Still key-bounded: imprecision is about columns, not rows.
        assert!(fp.key_bounded);
    }

    #[test]
    fn unbounded_scan_is_imprecise_but_columns_stay_tight() {
        let stmt = parse("SELECT body FROM page WHERE title LIKE '%x%'").unwrap();
        let fp = analyze(&stmt, &catalog());
        assert_eq!(fp.read_columns, ColumnSet::named(["body", "title"]));
        assert!(!fp.key_bounded);
        assert!(fp.precision.is_imprecise());
    }

    #[test]
    fn update_footprint_separates_read_and_write_columns() {
        let stmt = parse("UPDATE page SET body = body || '!' WHERE title = 'Main'").unwrap();
        let fp = analyze(&stmt, &catalog());
        assert_eq!(fp.read_columns, ColumnSet::named(["body", "title"]));
        assert_eq!(fp.write_columns, ColumnSet::named(["body"]));
        assert_eq!(fp.effective_write_columns(), ColumnSet::named(["body"]));
        assert!(!fp.membership_write);
        assert!(fp.key_bounded, "title is UNIQUE");
    }

    #[test]
    fn insert_and_delete_are_membership_writes() {
        let stmt = parse("INSERT INTO page (page_id, title) VALUES (9, 'New')").unwrap();
        let fp = analyze(&stmt, &catalog());
        assert_eq!(fp.write_columns, ColumnSet::named(["page_id", "title"]));
        assert!(fp.membership_write);
        assert!(fp.effective_write_columns().is_all());
        assert!(fp.key_bounded);

        let stmt = parse("DELETE FROM page WHERE page_id = 9").unwrap();
        let fp = analyze(&stmt, &catalog());
        assert_eq!(fp.read_columns, ColumnSet::named(["page_id"]));
        assert!(fp.membership_write);
        assert!(fp.effective_write_columns().is_all());
        assert!(fp.key_bounded);
    }

    #[test]
    fn partition_keys_can_bound_rows() {
        let mut keys = KeyCatalog::new();
        keys.add_key("note", ["topic"]);
        let stmt = parse("SELECT body FROM note WHERE topic = 'warp'").unwrap();
        assert!(analyze(&stmt, &keys).key_bounded);
        let stmt = parse("SELECT body FROM note WHERE body = 'x'").unwrap();
        assert!(!analyze(&stmt, &keys).key_bounded);
    }

    #[test]
    fn lints_flag_select_star_and_unbounded_writes() {
        let select_star = parse("SELECT * FROM page").unwrap();
        assert_eq!(lint_statement(&select_star)[0].rule, "select-star");
        let bare_update = parse("UPDATE page SET body = 'x'").unwrap();
        assert_eq!(lint_statement(&bare_update)[0].rule, "unbounded-write");
        let bare_delete = parse("DELETE FROM page").unwrap();
        assert_eq!(lint_statement(&bare_delete)[0].rule, "unbounded-write");
        let bounded = parse("UPDATE page SET body = 'x' WHERE page_id = 1").unwrap();
        assert!(lint_statement(&bounded).is_empty());
    }
}
