//! Statement execution.

use crate::ast::{AggregateFunc, Expr, SelectItem, SelectStatement, Statement};
use crate::error::{SqlError, SqlResult};
use crate::expr::eval_expr;
use crate::parser::parse;
use crate::schema::TableSchema;
use crate::storage::{Row, Table};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The result of executing a statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct QueryResult {
    /// Column names for `SELECT` results (empty for writes).
    pub columns: Vec<String>,
    /// Result rows for `SELECT` (empty for writes).
    pub rows: Vec<Row>,
    /// Number of rows inserted, updated or deleted.
    pub affected: u64,
    /// True if the query imposed a row order (`ORDER BY`): the order of
    /// `rows` is then part of the result's meaning, not a storage artifact.
    pub ordered: bool,
}

impl QueryResult {
    /// A result with no rows and no affected count.
    pub fn empty() -> Self {
        QueryResult::default()
    }

    /// Returns the single value of a single-row, single-column result.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Returns the values in the named column across all result rows.
    pub fn column_values(&self, name: &str) -> Vec<Value> {
        match self
            .columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
        {
            Some(idx) => self
                .rows
                .iter()
                .filter_map(|r| r.get(idx).cloned())
                .collect(),
            None => Vec::new(),
        }
    }

    /// A fingerprint of the result that is stable across executions; the
    /// repair controller compares fingerprints to decide whether a re-executed
    /// query "returned the same result" (paper §3.3, §4).
    ///
    /// Row *order* contributes only when the query imposed one (`ordered`,
    /// i.e. `ORDER BY`). Otherwise rows are combined commutatively, so two
    /// results holding the same multiset of rows fingerprint identically:
    /// without `ORDER BY`, row order is an artifact of physical storage —
    /// version churn during repair may permute otherwise-identical results,
    /// and treating that as a changed result would cascade into spurious
    /// re-execution.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.columns.hash(&mut h);
        if self.ordered {
            for row in &self.rows {
                for v in row {
                    v.hash(&mut h);
                }
                0xfeu8.hash(&mut h);
            }
        } else {
            // Commutative combine (wrapping add) over per-row hashes.
            let mut rows_digest = 0u64;
            for row in &self.rows {
                let mut rh = DefaultHasher::new();
                for v in row {
                    v.hash(&mut rh);
                }
                rows_digest = rows_digest.wrapping_add(rh.finish());
            }
            rows_digest.hash(&mut h);
        }
        (self.rows.len() as u64).hash(&mut h);
        self.affected.hash(&mut h);
        h.finish()
    }
}

/// Exact row images removed from and added to one table while change
/// capture is active (see [`Database::begin_change_capture`]). Both sides
/// are multisets in capture order; consumers net them per row value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableChanges {
    /// Row images removed (by `DELETE`, or the pre-image of an `UPDATE`).
    pub removed: Vec<Row>,
    /// Row images added (by `INSERT`, or the post-image of an `UPDATE`).
    pub added: Vec<Row>,
}

impl TableChanges {
    /// True if neither side recorded anything.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

/// An in-memory SQL database: a set of named tables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// Row-image change capture, keyed by normalized table name. `None`
    /// means capture is off (the normal-execution state): mutating
    /// statements then pay only a branch. When on, every mutation appends
    /// the exact rows it removed/added — the mutation paths materialise
    /// those rows anyway, so capture cost is O(rows changed), never
    /// O(table). The time-travel layer turns this on for the span of a
    /// repair generation to build mutation-tracked repair commits.
    capture: Option<BTreeMap<String, TableChanges>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database {
            tables: BTreeMap::new(),
            capture: None,
        }
    }

    /// Starts capturing row-image changes. Idempotent: if capture is
    /// already active the existing capture continues (callers that share a
    /// database across repair passes rely on accumulation); use
    /// [`Database::take_change_capture`] or
    /// [`Database::discard_change_capture`] to end it.
    pub fn begin_change_capture(&mut self) {
        if self.capture.is_none() {
            self.capture = Some(BTreeMap::new());
        }
    }

    /// Ends change capture and returns everything recorded since it began
    /// (empty if capture was never started).
    pub fn take_change_capture(&mut self) -> BTreeMap<String, TableChanges> {
        self.capture.take().unwrap_or_default()
    }

    /// Ends change capture, dropping whatever was recorded.
    pub fn discard_change_capture(&mut self) {
        self.capture = None;
    }

    /// True if change capture is currently recording.
    pub fn change_capture_active(&self) -> bool {
        self.capture.is_some()
    }

    /// Records an out-of-band change for layered callers that mutate rows
    /// directly through [`Database::table_mut`] (the time-travel layer's
    /// diff application and checkpoint restore). No-op when capture is off.
    pub fn record_change(&mut self, table: &str, removed: &[Row], added: &[Row]) {
        if let Some(capture) = &mut self.capture {
            if removed.is_empty() && added.is_empty() {
                return;
            }
            let entry = capture.entry(normalize(table)).or_default();
            entry.removed.extend(removed.iter().cloned());
            entry.added.extend(added.iter().cloned());
        }
    }

    /// Returns the names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Returns the schema of the named table, if it exists.
    pub fn schema(&self, table: &str) -> Option<&TableSchema> {
        self.tables.get(&normalize(table)).map(|t| &t.schema)
    }

    /// Returns a reference to the named table, if it exists.
    pub fn table(&self, table: &str) -> Option<&Table> {
        self.tables.get(&normalize(table))
    }

    /// Returns a mutable reference to the named table, if it exists.
    ///
    /// This is used by the time-travel layer for schema surgery (extending
    /// uniqueness constraints with versioning columns); ordinary data access
    /// goes through [`Database::execute`].
    pub fn table_mut(&mut self, table: &str) -> Option<&mut Table> {
        self.tables.get_mut(&normalize(table))
    }

    /// Total approximate size of all stored data, in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.tables.values().map(|t| t.approximate_bytes()).sum()
    }

    /// Clones the database, copying row data only for the tables `keep_rows`
    /// accepts; every other table keeps its schema but starts empty. The
    /// partitioned repair engine uses this to give worker batches
    /// bounded-memory clones covering just their dependency footprint.
    pub fn clone_schema_subset(&self, mut keep_rows: impl FnMut(&str) -> bool) -> Database {
        let tables = self
            .tables
            .iter()
            .map(|(name, table)| {
                let copy = if keep_rows(name) {
                    table.clone()
                } else {
                    Table::new(table.schema.clone())
                };
                (name.clone(), copy)
            })
            .collect();
        Database {
            tables,
            capture: None,
        }
    }

    /// Parses and executes a single SQL statement.
    pub fn execute_sql(&mut self, sql: &str) -> SqlResult<QueryResult> {
        let stmt = parse(sql)?;
        self.execute(&stmt)
    }

    /// Executes an already-parsed statement.
    pub fn execute(&mut self, stmt: &Statement) -> SqlResult<QueryResult> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                constraints,
            } => self.create_table(name, columns.clone(), constraints.clone()),
            Statement::DropTable { name } => {
                let key = normalize(name);
                if self.tables.remove(&key).is_none() {
                    return Err(SqlError::NoSuchTable(name.clone()));
                }
                Ok(QueryResult::empty())
            }
            Statement::AlterTableAddColumn { table, column } => {
                let t = self
                    .tables
                    .get_mut(&normalize(table))
                    .ok_or_else(|| SqlError::NoSuchTable(table.clone()))?;
                let default = column.default.clone().unwrap_or(Value::Null);
                t.schema.add_column(column.clone())?;
                t.add_column_with_default(default);
                Ok(QueryResult::empty())
            }
            Statement::Insert {
                table,
                columns,
                values,
            } => self.insert(table, columns, values),
            Statement::Select(select) => self.select(select),
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => self.update(table, assignments, where_clause.as_ref()),
            Statement::Delete {
                table,
                where_clause,
            } => self.delete(table, where_clause.as_ref()),
        }
    }

    fn create_table(
        &mut self,
        name: &str,
        columns: Vec<crate::ast::ColumnDef>,
        constraints: Vec<crate::ast::TableConstraint>,
    ) -> SqlResult<QueryResult> {
        let key = normalize(name);
        if self.tables.contains_key(&key) {
            return Err(SqlError::TableExists(name.to_string()));
        }
        let schema = TableSchema::new(name, columns, constraints)?;
        self.tables.insert(key, Table::new(schema));
        Ok(QueryResult::empty())
    }

    fn insert(
        &mut self,
        table: &str,
        columns: &[String],
        values: &[Vec<Expr>],
    ) -> SqlResult<QueryResult> {
        // Evaluate value expressions against an empty row context first (they
        // may not reference columns), then validate and append.
        let key = normalize(table);
        let t = self
            .tables
            .get(&key)
            .ok_or_else(|| SqlError::NoSuchTable(table.to_string()))?;
        let schema = t.schema.clone();
        let mut col_indexes = Vec::with_capacity(columns.len());
        for c in columns {
            let idx = schema
                .column_index(c)
                .ok_or_else(|| SqlError::NoSuchColumn(c.to_string()))?;
            col_indexes.push(idx);
        }
        let empty_row: Row = vec![Value::Null; schema.columns.len()];
        let mut new_rows = Vec::with_capacity(values.len());
        for value_exprs in values {
            let mut row: Row = schema
                .columns
                .iter()
                .map(|c| c.default.clone().unwrap_or(Value::Null))
                .collect();
            for (expr, &idx) in value_exprs.iter().zip(&col_indexes) {
                row[idx] = eval_expr(expr, &schema, &empty_row)?;
            }
            for (i, col) in schema.columns.iter().enumerate() {
                if col.is_not_null() && row[i].is_null() {
                    return Err(SqlError::NotNullViolation {
                        table: table.to_string(),
                        column: col.name.clone(),
                    });
                }
            }
            new_rows.push(row);
        }
        // Uniqueness checks consider both existing rows and the batch itself.
        let t = self.tables.get_mut(&key).expect("checked above");
        for (i, row) in new_rows.iter().enumerate() {
            check_unique(&t.schema, &t.rows, row, None)?;
            for earlier in &new_rows[..i] {
                check_rows_distinct(&t.schema, earlier, row, table)?;
            }
        }
        let n = new_rows.len() as u64;
        if self.capture.is_some() {
            self.record_change(table, &[], &new_rows);
        }
        let t = self.tables.get_mut(&key).expect("checked above");
        for row in new_rows {
            t.push_row(row);
        }
        Ok(QueryResult {
            columns: vec![],
            rows: vec![],
            affected: n,
            ordered: false,
        })
    }

    fn select(&mut self, select: &SelectStatement) -> SqlResult<QueryResult> {
        let key = normalize(&select.table);
        let t = self
            .tables
            .get(&key)
            .ok_or_else(|| SqlError::NoSuchTable(select.table.clone()))?;
        let schema = &t.schema;
        // Filter.
        let mut matching: Vec<&Row> = Vec::new();
        for row in &t.rows {
            if matches_where(select.where_clause.as_ref(), schema, row)? {
                matching.push(row);
            }
        }
        // Sort.
        if !select.order_by.is_empty() {
            let mut keyed: Vec<(Vec<Value>, &Row)> = Vec::with_capacity(matching.len());
            for row in matching {
                let mut k = Vec::with_capacity(select.order_by.len());
                for ob in &select.order_by {
                    k.push(eval_expr(&ob.expr, schema, row)?);
                }
                keyed.push((k, row));
            }
            keyed.sort_by(|a, b| {
                for (i, ob) in select.order_by.iter().enumerate() {
                    let ord = a.0[i].cmp_total(&b.0[i]);
                    let ord = if ob.ascending { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            matching = keyed.into_iter().map(|(_, r)| r).collect();
        }
        // Limit.
        if let Some(limit) = select.limit {
            matching.truncate(limit as usize);
        }
        // Project.
        let has_aggregate = select
            .items
            .iter()
            .any(|item| matches!(item, SelectItem::Expr { expr, .. } if contains_aggregate(expr)));
        let mut columns = Vec::new();
        for item in &select.items {
            match item {
                SelectItem::Wildcard => columns.extend(schema.column_names()),
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr.to_string()));
                }
            }
        }
        let mut rows = Vec::new();
        if has_aggregate {
            let mut out_row = Vec::new();
            for item in &select.items {
                match item {
                    SelectItem::Wildcard => {
                        return Err(SqlError::Execution("cannot mix * with aggregates".into()))
                    }
                    SelectItem::Expr { expr, .. } => {
                        out_row.push(eval_aggregate(expr, schema, &matching)?);
                    }
                }
            }
            rows.push(out_row);
        } else {
            for row in &matching {
                let mut out_row = Vec::new();
                for item in &select.items {
                    match item {
                        SelectItem::Wildcard => out_row.extend(row.iter().cloned()),
                        SelectItem::Expr { expr, .. } => {
                            out_row.push(eval_expr(expr, schema, row)?);
                        }
                    }
                }
                rows.push(out_row);
            }
        }
        Ok(QueryResult {
            columns,
            rows,
            affected: 0,
            ordered: !select.order_by.is_empty(),
        })
    }

    fn update(
        &mut self,
        table: &str,
        assignments: &[crate::ast::Assignment],
        where_clause: Option<&Expr>,
    ) -> SqlResult<QueryResult> {
        let key = normalize(table);
        let t = self
            .tables
            .get(&key)
            .ok_or_else(|| SqlError::NoSuchTable(table.to_string()))?;
        let schema = t.schema.clone();
        for a in assignments {
            if schema.column_index(&a.column).is_none() {
                return Err(SqlError::NoSuchColumn(a.column.clone()));
            }
        }
        // Compute the new contents first so constraint failures leave the
        // table untouched.
        let mut new_rows = t.rows.clone();
        let mut touched = Vec::new();
        for (i, row) in t.rows.iter().enumerate() {
            if matches_where(where_clause, &schema, row)? {
                let mut updated = row.clone();
                for a in assignments {
                    let idx = schema.column_index(&a.column).expect("validated above");
                    updated[idx] = eval_expr(&a.value, &schema, row)?;
                }
                for (ci, col) in schema.columns.iter().enumerate() {
                    if col.is_not_null() && updated[ci].is_null() {
                        return Err(SqlError::NotNullViolation {
                            table: table.to_string(),
                            column: col.name.clone(),
                        });
                    }
                }
                new_rows[i] = updated;
                touched.push(i);
            }
        }
        // Re-validate uniqueness over the updated table contents.
        for &i in &touched {
            check_unique(&schema, &new_rows, &new_rows[i], Some(i))?;
        }
        let affected = touched.len() as u64;
        if self.capture.is_some() && !touched.is_empty() {
            let old = self.tables.get(&key).expect("checked above");
            let removed: Vec<Row> = touched.iter().map(|&i| old.rows[i].clone()).collect();
            let added: Vec<Row> = touched.iter().map(|&i| new_rows[i].clone()).collect();
            self.record_change(table, &removed, &added);
        }
        let t = self.tables.get_mut(&key).expect("checked above");
        t.rows = new_rows;
        Ok(QueryResult {
            columns: vec![],
            rows: vec![],
            affected,
            ordered: false,
        })
    }

    fn delete(&mut self, table: &str, where_clause: Option<&Expr>) -> SqlResult<QueryResult> {
        let key = normalize(table);
        let capture_on = self.capture.is_some();
        let t = self
            .tables
            .get_mut(&key)
            .ok_or_else(|| SqlError::NoSuchTable(table.to_string()))?;
        let schema = t.schema.clone();
        let before = t.rows.len();
        let mut err = None;
        let mut removed: Vec<Row> = Vec::new();
        t.rows.retain(|row| {
            if err.is_some() {
                return true;
            }
            match matches_where(where_clause, &schema, row) {
                Ok(m) => {
                    if m && capture_on {
                        removed.push(row.clone());
                    }
                    !m
                }
                Err(e) => {
                    err = Some(e);
                    true
                }
            }
        });
        let affected = (before - t.rows.len()) as u64;
        // Record even on error: rows dropped before the predicate failed
        // stay dropped, and capture must reflect what actually happened.
        self.record_change(table, &removed, &[]);
        if let Some(e) = err {
            return Err(e);
        }
        Ok(QueryResult {
            columns: vec![],
            rows: vec![],
            affected,
            ordered: false,
        })
    }
}

fn normalize(name: &str) -> String {
    name.to_ascii_lowercase()
}

fn matches_where(where_clause: Option<&Expr>, schema: &TableSchema, row: &Row) -> SqlResult<bool> {
    match where_clause {
        None => Ok(true),
        Some(e) => Ok(eval_expr(e, schema, row)?.is_truthy()),
    }
}

fn contains_aggregate(expr: &Expr) -> bool {
    match expr {
        Expr::Aggregate { .. } => true,
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Unary { operand, .. } => contains_aggregate(operand),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        _ => false,
    }
}

fn eval_aggregate(expr: &Expr, schema: &TableSchema, rows: &[&Row]) -> SqlResult<Value> {
    match expr {
        Expr::Aggregate { func, arg } => match func {
            AggregateFunc::Count => match arg {
                None => Ok(Value::Int(rows.len() as i64)),
                Some(a) => {
                    let mut n = 0;
                    for row in rows {
                        if !eval_expr(a, schema, row)?.is_null() {
                            n += 1;
                        }
                    }
                    Ok(Value::Int(n))
                }
            },
            AggregateFunc::Max | AggregateFunc::Min => {
                let a = arg
                    .as_ref()
                    .ok_or_else(|| SqlError::Execution("MAX/MIN require an argument".into()))?;
                let mut best: Option<Value> = None;
                for row in rows {
                    let v = eval_expr(a, schema, row)?;
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            let keep_new = if *func == AggregateFunc::Max {
                                v.cmp_total(&b) == std::cmp::Ordering::Greater
                            } else {
                                v.cmp_total(&b) == std::cmp::Ordering::Less
                            };
                            if keep_new {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                Ok(best.unwrap_or(Value::Null))
            }
            AggregateFunc::Sum => {
                let a = arg
                    .as_ref()
                    .ok_or_else(|| SqlError::Execution("SUM requires an argument".into()))?;
                let mut int_sum: i64 = 0;
                let mut float_sum: f64 = 0.0;
                let mut any = false;
                let mut is_float = false;
                for row in rows {
                    let v = eval_expr(a, schema, row)?;
                    match v {
                        Value::Null => {}
                        Value::Float(f) => {
                            is_float = true;
                            float_sum += f;
                            any = true;
                        }
                        other => {
                            let i = other.as_int().ok_or_else(|| {
                                SqlError::Type("SUM over non-numeric value".into())
                            })?;
                            int_sum += i;
                            any = true;
                        }
                    }
                }
                if !any {
                    Ok(Value::Null)
                } else if is_float {
                    Ok(Value::Float(float_sum + int_sum as f64))
                } else {
                    Ok(Value::Int(int_sum))
                }
            }
        },
        // Non-aggregate expressions inside an aggregate query are evaluated
        // against the first matching row (this mirrors the lax behaviour web
        // applications rely on in MySQL/SQLite).
        other => match rows.first() {
            Some(row) => eval_expr(other, schema, row),
            None => Ok(Value::Null),
        },
    }
}

fn check_unique(
    schema: &TableSchema,
    rows: &[Row],
    candidate: &Row,
    skip_index: Option<usize>,
) -> SqlResult<()> {
    for uc in &schema.unique_constraints {
        let idxs: Vec<usize> = uc.iter().filter_map(|c| schema.column_index(c)).collect();
        if idxs.len() != uc.len() {
            continue;
        }
        // NULL in any constrained column exempts the row (SQL semantics).
        if idxs.iter().any(|&i| candidate[i].is_null()) {
            continue;
        }
        for (ri, row) in rows.iter().enumerate() {
            if Some(ri) == skip_index || std::ptr::eq(row, candidate) {
                continue;
            }
            if idxs
                .iter()
                .all(|&i| row[i].sql_eq(&candidate[i]) == Some(true))
            {
                return Err(SqlError::UniqueViolation {
                    table: schema.name.clone(),
                    columns: uc.clone(),
                });
            }
        }
    }
    Ok(())
}

fn check_rows_distinct(schema: &TableSchema, a: &Row, b: &Row, table: &str) -> SqlResult<()> {
    for uc in &schema.unique_constraints {
        let idxs: Vec<usize> = uc.iter().filter_map(|c| schema.column_index(c)).collect();
        if idxs.len() != uc.len() || idxs.iter().any(|&i| a[i].is_null() || b[i].is_null()) {
            continue;
        }
        if idxs.iter().all(|&i| a[i].sql_eq(&b[i]) == Some(true)) {
            return Err(SqlError::UniqueViolation {
                table: table.to_string(),
                columns: uc.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiki_db() -> Database {
        let mut db = Database::new();
        db.execute_sql(
            "CREATE TABLE page (page_id INTEGER PRIMARY KEY, title TEXT NOT NULL UNIQUE, \
             owner TEXT, views INTEGER DEFAULT 0, body TEXT)",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO page (page_id, title, owner, body) VALUES \
             (1, 'Main', 'alice', 'welcome'), (2, 'Help', 'bob', 'help text'), \
             (3, 'Sandbox', 'alice', 'scratch')",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_wildcard_and_projection() {
        let mut db = wiki_db();
        let r = db
            .execute_sql("SELECT * FROM page WHERE owner = 'alice' ORDER BY page_id")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.columns.len(), 5);
        let r = db
            .execute_sql("SELECT title FROM page WHERE page_id = 2")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::text("Help")));
    }

    #[test]
    fn select_order_by_desc_and_limit() {
        let mut db = wiki_db();
        let r = db
            .execute_sql("SELECT title FROM page ORDER BY title DESC LIMIT 2")
            .unwrap();
        let titles = r.column_values("title");
        assert_eq!(titles, vec![Value::text("Sandbox"), Value::text("Main")]);
    }

    #[test]
    fn default_values_applied_on_insert() {
        let mut db = wiki_db();
        let r = db
            .execute_sql("SELECT views FROM page WHERE page_id = 1")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn aggregates() {
        let mut db = wiki_db();
        let r = db
            .execute_sql("SELECT COUNT(*), MAX(page_id), MIN(page_id), SUM(page_id) FROM page")
            .unwrap();
        assert_eq!(
            r.rows[0],
            vec![Value::Int(3), Value::Int(3), Value::Int(1), Value::Int(6)]
        );
        let r = db
            .execute_sql("SELECT COUNT(*) FROM page WHERE owner = 'zoe'")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
        let r = db
            .execute_sql("SELECT MAX(page_id) FROM page WHERE owner = 'zoe'")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Null));
    }

    #[test]
    fn update_with_expression_and_where() {
        let mut db = wiki_db();
        let r = db
            .execute_sql("UPDATE page SET views = views + 10 WHERE owner = 'alice'")
            .unwrap();
        assert_eq!(r.affected, 2);
        let r = db.execute_sql("SELECT SUM(views) FROM page").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(20)));
    }

    #[test]
    fn delete_with_where() {
        let mut db = wiki_db();
        let r = db
            .execute_sql("DELETE FROM page WHERE owner = 'bob'")
            .unwrap();
        assert_eq!(r.affected, 1);
        let r = db.execute_sql("SELECT COUNT(*) FROM page").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn unique_violation_on_insert() {
        let mut db = wiki_db();
        let err = db
            .execute_sql("INSERT INTO page (page_id, title) VALUES (9, 'Main')")
            .unwrap_err();
        assert!(matches!(err, SqlError::UniqueViolation { .. }));
        // Primary-key duplication is also rejected.
        let err = db
            .execute_sql("INSERT INTO page (page_id, title) VALUES (1, 'Other')")
            .unwrap_err();
        assert!(matches!(err, SqlError::UniqueViolation { .. }));
    }

    #[test]
    fn unique_violation_on_update_leaves_table_unchanged() {
        let mut db = wiki_db();
        let err = db
            .execute_sql("UPDATE page SET title = 'Main' WHERE page_id = 2")
            .unwrap_err();
        assert!(matches!(err, SqlError::UniqueViolation { .. }));
        let r = db
            .execute_sql("SELECT title FROM page WHERE page_id = 2")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::text("Help")));
    }

    #[test]
    fn unique_violation_within_insert_batch() {
        let mut db = wiki_db();
        let err = db
            .execute_sql("INSERT INTO page (page_id, title) VALUES (10, 'X'), (11, 'X')")
            .unwrap_err();
        assert!(matches!(err, SqlError::UniqueViolation { .. }));
        let r = db.execute_sql("SELECT COUNT(*) FROM page").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn not_null_violation() {
        let mut db = wiki_db();
        let err = db
            .execute_sql("INSERT INTO page (page_id, title) VALUES (5, NULL)")
            .unwrap_err();
        assert!(matches!(err, SqlError::NotNullViolation { .. }));
    }

    #[test]
    fn missing_table_and_column_errors() {
        let mut db = wiki_db();
        assert!(matches!(
            db.execute_sql("SELECT * FROM nope"),
            Err(SqlError::NoSuchTable(_))
        ));
        assert!(matches!(
            db.execute_sql("SELECT nope FROM page"),
            Err(SqlError::NoSuchColumn(_))
        ));
        assert!(matches!(
            db.execute_sql("UPDATE page SET nope = 1"),
            Err(SqlError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn alter_table_add_column_backfills_default() {
        let mut db = wiki_db();
        db.execute_sql("ALTER TABLE page ADD COLUMN row_id INTEGER DEFAULT 0")
            .unwrap();
        let r = db
            .execute_sql("SELECT row_id FROM page WHERE page_id = 1")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn drop_table() {
        let mut db = wiki_db();
        db.execute_sql("DROP TABLE page").unwrap();
        assert!(db.schema("page").is_none());
        assert!(db.execute_sql("DROP TABLE page").is_err());
    }

    #[test]
    fn like_in_where() {
        let mut db = wiki_db();
        let r = db
            .execute_sql("SELECT title FROM page WHERE title LIKE 'S%'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::text("Sandbox"));
    }

    #[test]
    fn fingerprint_changes_with_data() {
        let mut db = wiki_db();
        let a = db
            .execute_sql("SELECT * FROM page ORDER BY page_id")
            .unwrap()
            .fingerprint();
        db.execute_sql("UPDATE page SET body = 'changed' WHERE page_id = 1")
            .unwrap();
        let b = db
            .execute_sql("SELECT * FROM page ORDER BY page_id")
            .unwrap()
            .fingerprint();
        assert_ne!(a, b);
        let c = db
            .execute_sql("SELECT * FROM page ORDER BY page_id")
            .unwrap()
            .fingerprint();
        assert_eq!(b, c);
    }

    #[test]
    fn change_capture_records_exact_row_images() {
        let mut db = wiki_db();
        // Capture off: mutations record nothing.
        db.execute_sql("UPDATE page SET views = 1 WHERE page_id = 1")
            .unwrap();
        assert!(db.take_change_capture().is_empty());
        db.begin_change_capture();
        assert!(db.change_capture_active());
        db.execute_sql("INSERT INTO page (page_id, title) VALUES (7, 'New')")
            .unwrap();
        db.execute_sql("UPDATE page SET views = views + 5 WHERE owner = 'alice'")
            .unwrap();
        db.execute_sql("DELETE FROM page WHERE page_id = 2")
            .unwrap();
        let changes = db.take_change_capture();
        assert!(!db.change_capture_active());
        let page = &changes["page"];
        // 1 insert + 2 update post-images added; 2 update pre-images +
        // 1 delete removed.
        assert_eq!(page.added.len(), 3);
        assert_eq!(page.removed.len(), 3);
        assert!(page.added.iter().any(|r| r[0] == Value::Int(7)));
        assert!(page.removed.iter().any(|r| r[0] == Value::Int(2)));
        // Update pre/post images differ only in the assigned column.
        let pre = page.removed.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        let post = page.added.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(pre[3], Value::Int(1));
        assert_eq!(post[3], Value::Int(6));
    }

    #[test]
    fn change_capture_survives_failed_statements_exactly() {
        let mut db = wiki_db();
        db.begin_change_capture();
        // A failed update leaves the table (and the capture) untouched.
        assert!(db
            .execute_sql("UPDATE page SET title = 'Main' WHERE page_id = 2")
            .is_err());
        // A failed insert batch adds nothing.
        assert!(db
            .execute_sql("INSERT INTO page (page_id, title) VALUES (10, 'X'), (11, 'X')")
            .is_err());
        assert!(db.take_change_capture().is_empty());
    }

    #[test]
    fn case_insensitive_table_names() {
        let mut db = wiki_db();
        let r = db.execute_sql("SELECT COUNT(*) FROM PAGE").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }
}
