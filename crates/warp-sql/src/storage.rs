//! Row storage.

use crate::schema::TableSchema;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A stored row: one [`Value`] per column, in schema order.
pub type Row = Vec<Value>;

/// A table: a schema plus its rows.
///
/// Storage is a simple row vector; the engine is designed for workloads of
/// tens of thousands of rows (the paper's MediaWiki evaluation), not for
/// large-scale OLTP. All versioning is handled above this layer by
/// `warp-ttdb` through extra columns, exactly as the paper layers continuous
/// versioning over an unmodified PostgreSQL.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    /// The stored rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row. The caller must have already normalised it to schema
    /// order and validated constraints.
    pub fn push_row(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.schema.columns.len());
        self.rows.push(row);
    }

    /// Returns the value of `column` in row `row_idx`, if both exist.
    pub fn cell(&self, row_idx: usize, column: &str) -> Option<&Value> {
        let col = self.schema.column_index(column)?;
        self.rows.get(row_idx).and_then(|r| r.get(col))
    }

    /// Adds a new column to the schema and back-fills every existing row with
    /// the given default value.
    pub fn add_column_with_default(&mut self, default: Value) {
        for row in &mut self.rows {
            row.push(default.clone());
        }
    }

    /// Approximate in-memory size of the table's data in bytes. Used by the
    /// evaluation harness to report storage costs (paper Table 6).
    pub fn approximate_bytes(&self) -> usize {
        let mut total = 0;
        for row in &self.rows {
            for v in row {
                total += match v {
                    Value::Null => 1,
                    Value::Bool(_) => 1,
                    Value::Int(_) => 8,
                    Value::Float(_) => 8,
                    Value::Text(s) => s.len() + 8,
                };
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnDef;
    use crate::schema::ColumnType;

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Integer),
                ColumnDef::new("name", ColumnType::Text),
            ],
            vec![],
        )
        .unwrap();
        Table::new(schema)
    }

    #[test]
    fn push_and_lookup() {
        let mut t = table();
        assert!(t.is_empty());
        t.push_row(vec![Value::Int(1), Value::text("a")]);
        t.push_row(vec![Value::Int(2), Value::text("b")]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, "name"), Some(&Value::text("b")));
        assert_eq!(t.cell(1, "missing"), None);
        assert_eq!(t.cell(9, "name"), None);
    }

    #[test]
    fn add_column_backfills() {
        let mut t = table();
        t.push_row(vec![Value::Int(1), Value::text("a")]);
        t.schema
            .add_column(ColumnDef::new("extra", ColumnType::Integer))
            .unwrap();
        t.add_column_with_default(Value::Int(0));
        assert_eq!(t.cell(0, "extra"), Some(&Value::Int(0)));
    }

    #[test]
    fn approximate_bytes_counts_text() {
        let mut t = table();
        t.push_row(vec![Value::Int(1), Value::text("abcd")]);
        assert_eq!(t.approximate_bytes(), 8 + 4 + 8);
    }
}
