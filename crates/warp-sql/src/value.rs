//! SQL values and their comparison/coercion semantics.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed SQL value.
///
/// `Value` deliberately implements a total ordering (NULL sorts first, then
/// booleans, integers/floats, then text) so that rows can be sorted and used
/// as keys deterministically, which the repair machinery relies on when
/// comparing query results before and after re-execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// Creates a [`Value::Text`] from anything string-like.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Returns true if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a SQL boolean (NULL and zero are false).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Text(s) => !s.is_empty(),
        }
    }

    /// Returns the value as an integer if it is numeric or a numeric string.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Text(s) => s.trim().parse().ok(),
            Value::Null => None,
        }
    }

    /// Returns the value as a float if it is numeric or a numeric string.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(f64::from(u8::from(*b))),
            Value::Text(s) => s.trim().parse().ok(),
            Value::Null => None,
        }
    }

    /// Renders the value the way it appears in a result set (no quoting).
    pub fn as_display_string(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Text(s) => s.clone(),
        }
    }

    /// Renders the value as a SQL literal (text is quoted and escaped).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }

    /// SQL equality: NULL is not equal to anything (including NULL); numeric
    /// types compare by value across Int/Float/Bool; text compares exactly.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_total(other) == Ordering::Equal)
    }

    /// Total ordering used for ORDER BY and for deterministic result
    /// comparison. NULL sorts before every other value.
    ///
    /// Integer-to-integer comparison is exact: going through f64 would
    /// collapse neighbouring values above 2^53 — and the time-travel
    /// layer's validity predicates compare logical timestamps right at
    /// `i64::MAX` ("infinity"), where f64 rounding made `INF > INF - 1`
    /// come out false and every "current version" query at the end of
    /// time silently return nothing.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Text(a), Text(b)) => a.cmp(b),
            (Text(_), _) => Ordering::Greater,
            (_, Text(_)) => Ordering::Less,
            (Int(a), Int(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => {
                let fa = a.as_float().unwrap_or(0.0);
                let fb = b.as_float().unwrap_or(0.0);
                fa.partial_cmp(&fb).unwrap_or(Ordering::Equal)
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal && self.is_null() == other.is_null()
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_total(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                (*f as i64).hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_display_string())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(3).is_truthy());
        assert!(!Value::text("").is_truthy());
        assert!(Value::text("x").is_truthy());
        assert!(!Value::Bool(false).is_truthy());
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_eq!(Value::Bool(true), Value::Int(1));
        assert_ne!(Value::Int(1), Value::Int(2));
    }

    #[test]
    fn null_equality_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn ordering_null_first_text_last() {
        let mut vals = [
            Value::text("b"),
            Value::Int(5),
            Value::Null,
            Value::text("a"),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(5));
        assert_eq!(vals[2], Value::text("a"));
        assert_eq!(vals[3], Value::text("b"));
    }

    #[test]
    fn literals_are_escaped() {
        assert_eq!(Value::text("o'neil").to_sql_literal(), "'o''neil'");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Int(7).to_sql_literal(), "7");
    }

    #[test]
    fn numeric_string_coercion() {
        assert_eq!(Value::text("42").as_int(), Some(42));
        assert_eq!(Value::text("4.5").as_float(), Some(4.5));
        assert_eq!(Value::text("nope").as_int(), None);
    }

    /// Int-to-int comparison must be exact beyond f64's 2^53 mantissa —
    /// the time-travel layer compares timestamps right at i64::MAX, where
    /// f64 rounding once made `MAX > MAX - 1` come out false (and
    /// `Value::Int(MAX) == Value::Int(MAX - 1)` come out true).
    #[test]
    fn int_comparison_is_exact_at_i64_extremes() {
        use std::cmp::Ordering;
        let max = Value::Int(i64::MAX);
        let max1 = Value::Int(i64::MAX - 1);
        assert_eq!(max.cmp_total(&max1), Ordering::Greater);
        assert_eq!(max1.cmp_total(&max), Ordering::Less);
        assert_eq!(max.cmp_total(&Value::Int(i64::MAX)), Ordering::Equal);
        assert_ne!(max, max1);
        assert_eq!(max.sql_eq(&max1), Some(false));
        let big = 1i64 << 53;
        assert_eq!(
            Value::Int(big).cmp_total(&Value::Int(big + 1)),
            Ordering::Less
        );
    }
}
